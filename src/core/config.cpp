#include "core/config.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

#include "util/check.hpp"

namespace ccf::core {

namespace {
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream iss(line);
  std::string tok;
  while (iss >> tok) out.push_back(tok);
  return out;
}

/// Splits "P0.r1" into {"P0", "r1"}.
std::pair<std::string, std::string> split_region_ref(const std::string& text) {
  const auto dot = text.find('.');
  CCF_REQUIRE(dot != std::string::npos && dot > 0 && dot + 1 < text.size(),
              "bad region reference '" << text << "' (expected program.region)");
  return {text.substr(0, dot), text.substr(dot + 1)};
}
}  // namespace

Config Config::parse_string(const std::string& text) {
  Config config;
  std::istringstream stream(text);
  std::string line;
  bool in_connections = false;
  int lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    // Strip trailing CR and whitespace-only lines.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '#') {
      // A line that is exactly "#" separates programs from connections;
      // anything else starting with '#' is a comment.
      if (line.substr(first) == "#") in_connections = true;
      continue;
    }
    const auto tokens = tokenize(line);
    if (!in_connections) {
      CCF_REQUIRE(tokens.size() >= 4,
                  "config line " << lineno << ": program needs <name> <host> <exe> <nprocs>");
      ProgramSpec spec;
      spec.name = tokens[0];
      spec.host = tokens[1];
      spec.executable = tokens[2];
      char* end = nullptr;
      spec.nprocs = static_cast<int>(std::strtol(tokens[3].c_str(), &end, 10));
      CCF_REQUIRE(end && *end == '\0' && spec.nprocs > 0,
                  "config line " << lineno << ": bad process count '" << tokens[3] << "'");
      // Optional `fanin=F` / `shards=S` / `flush_count=N` / `flush_bytes=B`
      // tokens configure the hierarchical representative layer; anything
      // else goes to extra_args verbatim.
      for (auto it = tokens.begin() + 4; it != tokens.end(); ++it) {
        int* field = nullptr;
        std::size_t prefix = 0;
        if (it->rfind("fanin=", 0) == 0) {
          field = &spec.rep_fanin;
          prefix = 6;
        } else if (it->rfind("shards=", 0) == 0) {
          field = &spec.rep_shards;
          prefix = 7;
        } else if (it->rfind("flush_count=", 0) == 0) {
          field = &spec.tree_flush_count;
          prefix = 12;
        } else if (it->rfind("flush_bytes=", 0) == 0) {
          field = &spec.tree_flush_bytes;
          prefix = 12;
        }
        if (!field) {
          spec.extra_args.push_back(*it);
          continue;
        }
        char* vend = nullptr;
        *field = static_cast<int>(std::strtol(it->c_str() + prefix, &vend, 10));
        CCF_REQUIRE(vend && *vend == '\0',
                    "config line " << lineno << ": bad value in '" << *it << "'");
      }
      config.add_program(std::move(spec));
    } else {
      CCF_REQUIRE(tokens.size() == 4 || tokens.size() == 8,
                  "config line " << lineno
                                 << ": connection needs <exp.reg> <imp.reg> <policy> <tol> "
                                    "[r0 r1 c0 c1]");
      ConnectionSpec spec;
      std::tie(spec.exporter_program, spec.exporter_region) = split_region_ref(tokens[0]);
      std::tie(spec.importer_program, spec.importer_region) = split_region_ref(tokens[1]);
      spec.policy = parse_match_policy(tokens[2]);
      char* end = nullptr;
      spec.tolerance = std::strtod(tokens[3].c_str(), &end);
      CCF_REQUIRE(end && *end == '\0' && spec.tolerance >= 0,
                  "config line " << lineno << ": bad tolerance '" << tokens[3] << "'");
      if (tokens.size() == 8) {
        dist::Box window;
        dist::Index* fields[4] = {&window.row_begin, &window.row_end, &window.col_begin,
                                  &window.col_end};
        for (int i = 0; i < 4; ++i) {
          char* iend = nullptr;
          *fields[i] = std::strtoll(tokens[static_cast<std::size_t>(4 + i)].c_str(), &iend, 10);
          CCF_REQUIRE(iend && *iend == '\0',
                      "config line " << lineno << ": bad window bound '"
                                     << tokens[static_cast<std::size_t>(4 + i)] << "'");
        }
        CCF_REQUIRE(!window.empty(), "config line " << lineno << ": empty transfer window");
        spec.exporter_window = window;
      }
      config.add_connection(std::move(spec));
    }
  }
  config.validate();
  return config;
}

Config Config::parse_file(const std::string& path) {
  std::ifstream in(path);
  CCF_REQUIRE(in.is_open(), "cannot open config file: " << path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_string(buffer.str());
}

void Config::add_program(ProgramSpec spec) {
  CCF_REQUIRE(!spec.name.empty(), "program name is empty");
  CCF_REQUIRE(spec.nprocs > 0, "program " << spec.name << " needs at least one process");
  CCF_REQUIRE(!has_program(spec.name), "duplicate program '" << spec.name << "'");
  CCF_REQUIRE(spec.rep_fanin == 0 || spec.rep_fanin >= 2,
              "program " << spec.name << ": rep_fanin must be 0 (flat) or >= 2, got "
                         << spec.rep_fanin);
  CCF_REQUIRE(spec.rep_shards >= 1,
              "program " << spec.name << ": rep_shards must be >= 1, got " << spec.rep_shards);
  CCF_REQUIRE(spec.tree_flush_count >= 0,
              "program " << spec.name << ": tree_flush_count must be >= 0, got "
                         << spec.tree_flush_count);
  CCF_REQUIRE(spec.tree_flush_bytes >= 0,
              "program " << spec.name << ": tree_flush_bytes must be >= 0, got "
                         << spec.tree_flush_bytes);
  programs_.push_back(std::move(spec));
}

void Config::add_connection(ConnectionSpec spec) {
  CCF_REQUIRE(spec.tolerance >= 0, "negative tolerance on connection");
  connections_.push_back(std::move(spec));
}

void Config::validate() const {
  CCF_REQUIRE(connections_.size() <= 32,
              "at most 32 connections supported (buffer masks are 32-bit)");
  std::set<std::pair<std::string, std::string>> imported;
  for (const auto& conn : connections_) {
    CCF_REQUIRE(has_program(conn.exporter_program),
                "connection references undeclared exporter program '" << conn.exporter_program
                                                                      << "'");
    CCF_REQUIRE(has_program(conn.importer_program),
                "connection references undeclared importer program '" << conn.importer_program
                                                                      << "'");
    CCF_REQUIRE(conn.exporter_program != conn.importer_program,
                "self-coupling of program '" << conn.exporter_program
                                             << "' is not supported");
    const auto key = std::make_pair(conn.importer_program, conn.importer_region);
    CCF_REQUIRE(!imported.count(key), "imported region " << conn.importer_program << "."
                                                         << conn.importer_region
                                                         << " has more than one exporter");
    imported.insert(key);
  }
}

const ProgramSpec& Config::program(const std::string& name) const {
  for (const auto& p : programs_) {
    if (p.name == name) return p;
  }
  throw util::InvalidArgument("unknown program '" + name + "'");
}

bool Config::has_program(const std::string& name) const {
  for (const auto& p : programs_) {
    if (p.name == name) return true;
  }
  return false;
}

std::vector<int> Config::connections_exporting(const std::string& program,
                                               const std::string& region) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i].exporter_program == program && connections_[i].exporter_region == region) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::optional<int> Config::connection_importing(const std::string& program,
                                                const std::string& region) const {
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i].importer_program == program && connections_[i].importer_region == region) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

std::vector<int> Config::connections_of_exporter_program(const std::string& program) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i].exporter_program == program) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Config::connections_of_importer_program(const std::string& program) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i].importer_program == program) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::string Config::summary() const {
  std::ostringstream os;
  os << programs_.size() << " programs, " << connections_.size() << " connections\n";
  for (const auto& p : programs_) {
    os << "  " << p.name << " on " << p.host << " x" << p.nprocs << "\n";
  }
  for (const auto& c : connections_) {
    os << "  " << c.exporter_program << "." << c.exporter_region << " -> " << c.importer_program
       << "." << c.importer_region << " " << to_string(c.policy) << " " << c.tolerance << "\n";
  }
  return os.str();
}

}  // namespace ccf::core
