#include "core/buffer_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccf::core {

double BufferPool::store(Timestamp t, const double* src, std::size_t count, ConnMask needed,
                         runtime::ProcessContext& ctx) {
  CCF_REQUIRE(needed != 0, "storing a snapshot nobody needs");
  CCF_REQUIRE(!entries_.count(t), "timestamp " << t << " already buffered");
  Entry entry;
  entry.data.resize(count);
  const std::size_t bytes = count * sizeof(double);
  const double before = ctx.now();
  ctx.copy(entry.data.data(), src, bytes);  // the memcpy the paper counts
  entry.cost_seconds = ctx.now() - before;
  entry.needed = needed;

  ++stats_.stores;
  stats_.bytes_copied += bytes;
  stats_.seconds_buffering += entry.cost_seconds;
  ++stats_.live_entries;
  stats_.live_bytes += bytes;
  stats_.peak_entries = std::max(stats_.peak_entries, stats_.live_entries);
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.live_bytes);

  const double cost = entry.cost_seconds;
  entries_.emplace(t, std::move(entry));
  return cost;
}

const std::vector<double>& BufferPool::snapshot(Timestamp t) const {
  auto it = entries_.find(t);
  CCF_CHECK(it != entries_.end(), "no buffered snapshot for timestamp " << t);
  return it->second.data;
}

void BufferPool::mark_sent(Timestamp t, int conn_index) {
  auto it = entries_.find(t);
  CCF_CHECK(it != entries_.end(), "mark_sent on absent timestamp " << t);
  CCF_CHECK(conn_index >= 0 && conn_index < 32, "connection index " << conn_index << " out of range");
  it->second.ever_sent = true;
  ++stats_.sends;
}

void BufferPool::free_entry_locked(std::map<Timestamp, Entry>::iterator it) {
  const std::size_t bytes = it->second.data.size() * sizeof(double);
  if (it->second.ever_sent) {
    ++stats_.frees_sent;
  } else {
    ++stats_.frees_unsent;
    stats_.seconds_unnecessary += it->second.cost_seconds;
  }
  --stats_.live_entries;
  stats_.live_bytes -= bytes;
  entries_.erase(it);
}

std::optional<BufferPool::Freed> BufferPool::drop(Timestamp t, int conn_index) {
  auto it = entries_.find(t);
  if (it == entries_.end()) return std::nullopt;
  it->second.needed &= ~(ConnMask{1} << conn_index);
  if (it->second.needed != 0) return std::nullopt;
  Freed freed{it->first, it->second.cost_seconds, it->second.ever_sent};
  free_entry_locked(it);
  return freed;
}

std::vector<BufferPool::Freed> BufferPool::drop_below(Timestamp t, int conn_index) {
  std::vector<Freed> out;
  for (auto it = entries_.begin(); it != entries_.end() && it->first < t;) {
    auto cur = it++;
    cur->second.needed &= ~(ConnMask{1} << conn_index);
    if (cur->second.needed == 0) {
      out.push_back(Freed{cur->first, cur->second.cost_seconds, cur->second.ever_sent});
      free_entry_locked(cur);
    }
  }
  return out;
}

std::vector<Timestamp> BufferPool::buffered_timestamps() const {
  std::vector<Timestamp> out;
  out.reserve(entries_.size());
  for (const auto& [t, e] : entries_) out.push_back(t);
  return out;
}

std::vector<Timestamp> BufferPool::buffered_below(Timestamp t, int conn_index) const {
  std::vector<Timestamp> out;
  for (const auto& [ts, e] : entries_) {
    if (ts >= t) break;
    if (e.needed & (ConnMask{1} << conn_index)) out.push_back(ts);
  }
  return out;
}

}  // namespace ccf::core
