#include "core/buffer_pool.hpp"

#include <algorithm>
#include <cstring>

#include "transport/serialize.hpp"
#include "util/check.hpp"

namespace ccf::core {

namespace {
constexpr std::size_t kPrefix = transport::kLengthPrefixBytes;
}  // namespace

void BufferPool::attach_memory(mem::MemoryGovernor* governor, mem::SpillStore* spill) {
  CCF_CHECK(entries_.empty() && stats_.stores == 0,
            "attach_memory must precede the first store");
  governor_ = governor;
  spill_ = spill;
}

void BufferPool::set_arena_limits(std::size_t max_frames, std::size_t max_bytes) {
  arena_max_frames_ = max_frames;
  arena_max_bytes_ = max_bytes;
  // Shrink an already-parked surplus (limits may tighten mid-run).
  while (arena_.size() > arena_max_frames_ ||
         (arena_max_bytes_ > 0 && arena_bytes_ > arena_max_bytes_)) {
    arena_bytes_ -= arena_.back()->capacity;
    arena_.pop_back();
  }
}

void BufferPool::park_frame(std::shared_ptr<SnapshotFrame> frame) {
  if (arena_.size() >= arena_max_frames_) return;
  if (arena_max_bytes_ > 0 && arena_bytes_ + frame->capacity > arena_max_bytes_) return;
  arena_bytes_ += frame->capacity;
  arena_.push_back(std::move(frame));
}

std::shared_ptr<BufferPool::SnapshotFrame> BufferPool::acquire_frame(std::size_t frame_bytes) {
  // Best fit from the free list: smallest recycled frame that holds the
  // request. Steady-state coupling stores same-sized snapshots, so this
  // is a hit (and zero heap traffic) after the first few exports.
  auto best = arena_.end();
  for (auto it = arena_.begin(); it != arena_.end(); ++it) {
    if ((*it)->capacity < frame_bytes) continue;
    if (best == arena_.end() || (*it)->capacity < (*best)->capacity) best = it;
  }
  if (best != arena_.end()) {
    std::shared_ptr<SnapshotFrame> frame = std::move(*best);
    arena_bytes_ -= frame->capacity;
    arena_.erase(best);
    frame->size = frame_bytes;
    ++stats_.arena_reuses;
    return frame;
  }
  auto frame = std::make_shared<SnapshotFrame>();
  // new[] (not a vector) so the bytes are not value-initialized before the
  // snapshot memcpy overwrites them; operator new aligns to max_align_t,
  // which keeps the doubles at offset kPrefix (8) naturally aligned.
  frame->bytes = std::unique_ptr<std::byte[]>(new std::byte[frame_bytes]);
  frame->capacity = frame_bytes;
  frame->size = frame_bytes;
  ++stats_.arena_allocs;
  return frame;
}

double BufferPool::store(Timestamp t, const double* src, std::size_t count, ConnMask needed,
                         runtime::ProcessContext& ctx) {
  CCF_REQUIRE(needed != 0, "storing a snapshot nobody needs");
  CCF_REQUIRE(!entries_.count(t), "timestamp " << t << " already buffered");
  const std::size_t bytes = count * sizeof(double);
  Entry entry;
  entry.frame = acquire_frame(kPrefix + bytes);
  entry.count = count;
  const auto n64 = static_cast<std::uint64_t>(count);
  std::memcpy(entry.frame->bytes.get(), &n64, kPrefix);
  const double before = ctx.now();
  // The memcpy the paper counts: data bytes only, the prefix is framing.
  ctx.copy(entry.frame->bytes.get() + kPrefix, src, bytes);
  entry.cost_seconds = ctx.now() - before;
  entry.needed = needed;

  ++stats_.stores;
  stats_.bytes_copied += bytes;
  stats_.seconds_buffering += entry.cost_seconds;
  ++stats_.live_entries;
  stats_.live_bytes += bytes;
  stats_.peak_entries = std::max(stats_.peak_entries, stats_.live_entries);
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.live_bytes);
  if (governor_ != nullptr) governor_->charge(bytes);

  const double cost = entry.cost_seconds;
  entries_.emplace(t, std::move(entry));
  return cost;
}

BufferPool::SnapshotView BufferPool::snapshot(Timestamp t) const {
  auto it = entries_.find(t);
  CCF_CHECK(it != entries_.end(), "no buffered snapshot for timestamp " << t);
  const Entry& e = it->second;
  CCF_CHECK(e.frame != nullptr,
            "snapshot " << t << " is spilled; call ensure_resident first");
  return SnapshotView(reinterpret_cast<const double*>(e.frame->bytes.get() + kPrefix), e.count);
}

transport::Payload BufferPool::wire_payload(Timestamp t) const {
  auto it = entries_.find(t);
  CCF_CHECK(it != entries_.end(), "no buffered snapshot for timestamp " << t);
  const std::shared_ptr<SnapshotFrame>& frame = it->second.frame;
  CCF_CHECK(frame != nullptr,
            "snapshot " << t << " is spilled; call ensure_resident first");
  return transport::Payload(frame, frame->bytes.get(), frame->size);
}

bool BufferPool::is_spilled(Timestamp t) const {
  auto it = entries_.find(t);
  return it != entries_.end() && it->second.frame == nullptr;
}

std::vector<Timestamp> BufferPool::resident_timestamps() const {
  std::vector<Timestamp> out;
  for (const auto& [t, e] : entries_) {
    if (e.frame != nullptr) out.push_back(t);
  }
  return out;
}

bool BufferPool::spillable(Timestamp t) const {
  auto it = entries_.find(t);
  if (it == entries_.end() || it->second.frame == nullptr) return false;
  // An in-flight payload aliasing the frame keeps its bytes alive anyway,
  // so demoting the entry would not reclaim memory. Empty snapshots carry
  // no data worth a file.
  return it->second.frame.use_count() == 1 && it->second.count > 0;
}

std::size_t BufferPool::data_bytes(Timestamp t) const {
  auto it = entries_.find(t);
  CCF_CHECK(it != entries_.end(), "data_bytes of absent timestamp " << t);
  return it->second.count * sizeof(double);
}

std::size_t BufferPool::spill_out(Timestamp t) {
  CCF_CHECK(spill_ != nullptr, "spill_out without a spill store");
  if (!spillable(t)) return 0;
  Entry& e = entries_.find(t)->second;
  const std::size_t bytes = e.count * sizeof(double);
  // The whole wire frame (prefix + data) goes to disk so the restored
  // frame is byte-identical and alias-sendable with no re-framing.
  e.ticket = spill_->put(e.frame->bytes.get(), e.frame->size);
  e.frame.reset();  // released to the heap, not parked: the point is RSS
  ++stats_.evictions;
  stats_.spill_bytes += bytes;
  ++stats_.live_spilled_entries;
  stats_.live_spilled_bytes += bytes;
  stats_.live_bytes -= bytes;
  if (governor_ != nullptr) governor_->release(bytes);
  return bytes;
}

std::size_t BufferPool::restore_shortfall(Timestamp t) const {
  if (governor_ == nullptr) return 0;
  auto it = entries_.find(t);
  if (it == entries_.end() || it->second.frame != nullptr) return 0;
  return governor_->shortfall(it->second.count * sizeof(double));
}

void BufferPool::ensure_resident(Timestamp t) {
  auto it = entries_.find(t);
  CCF_CHECK(it != entries_.end(), "ensure_resident of absent timestamp " << t);
  Entry& e = it->second;
  if (e.frame != nullptr) return;
  const std::size_t bytes = e.count * sizeof(double);
  e.frame = acquire_frame(e.ticket.bytes);
  spill_->restore(e.ticket, e.frame->bytes.get());
  e.ticket = {};
  ++stats_.restores;
  CCF_CHECK(stats_.live_spilled_entries > 0 && stats_.live_spilled_bytes >= bytes,
            "spill residency accounting underflow");
  --stats_.live_spilled_entries;
  stats_.live_spilled_bytes -= bytes;
  stats_.live_bytes += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.live_bytes);
  if (governor_ != nullptr) governor_->charge(bytes);
}

void BufferPool::mark_sent(Timestamp t, int conn_index) {
  auto it = entries_.find(t);
  CCF_CHECK(it != entries_.end(), "mark_sent on absent timestamp " << t);
  CCF_CHECK(conn_index >= 0 && conn_index < 32, "connection index " << conn_index << " out of range");
  it->second.ever_sent = true;
  ++stats_.sends;
}

void BufferPool::free_entry_locked(std::map<Timestamp, Entry>::iterator it) {
  const std::size_t bytes = it->second.count * sizeof(double);
  if (it->second.ever_sent) {
    ++stats_.frees_sent;
  } else {
    ++stats_.frees_unsent;
    stats_.seconds_unnecessary += it->second.cost_seconds;
  }
  --stats_.live_entries;
  if (it->second.frame == nullptr) {
    // Spilled entry proven non-matchable while on disk (buddy-help or a
    // low-water advance): drop the file, no restore round-trip.
    spill_->release(it->second.ticket);
    ++stats_.spill_frees;
    --stats_.live_spilled_entries;
    stats_.live_spilled_bytes -= bytes;
    entries_.erase(it);
    return;
  }
  stats_.live_bytes -= bytes;
  if (governor_ != nullptr) governor_->release(bytes);
  // Recycle the frame only when the pool holds the last reference: an
  // in-flight payload still aliasing it must keep its bytes intact, so
  // such a frame is simply released (the payload frees it when done).
  if (it->second.frame.use_count() == 1) {
    park_frame(std::move(it->second.frame));
  }
  entries_.erase(it);
}

std::optional<BufferPool::Freed> BufferPool::drop(Timestamp t, int conn_index) {
  auto it = entries_.find(t);
  if (it == entries_.end()) return std::nullopt;
  it->second.needed &= ~(ConnMask{1} << conn_index);
  if (it->second.needed != 0) return std::nullopt;
  Freed freed{it->first, it->second.cost_seconds, it->second.ever_sent};
  free_entry_locked(it);
  return freed;
}

std::vector<BufferPool::Freed> BufferPool::drop_below(Timestamp t, int conn_index) {
  std::vector<Freed> out;
  for (auto it = entries_.begin(); it != entries_.end() && it->first < t;) {
    auto cur = it++;
    cur->second.needed &= ~(ConnMask{1} << conn_index);
    if (cur->second.needed == 0) {
      out.push_back(Freed{cur->first, cur->second.cost_seconds, cur->second.ever_sent});
      free_entry_locked(cur);
    }
  }
  return out;
}

std::vector<Timestamp> BufferPool::buffered_timestamps() const {
  std::vector<Timestamp> out;
  out.reserve(entries_.size());
  for (const auto& [t, e] : entries_) out.push_back(t);
  return out;
}

std::vector<Timestamp> BufferPool::buffered_below(Timestamp t, int conn_index) const {
  std::vector<Timestamp> out;
  for (const auto& [ts, e] : entries_) {
    if (ts >= t) break;
    if (e.needed & (ConnMask{1} << conn_index)) out.push_back(ts);
  }
  return out;
}

}  // namespace ccf::core
