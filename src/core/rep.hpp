// The representative (rep) process body (paper §4).
//
// Each program runs one extra low-overhead control process. For regions
// the program exports, the rep forwards import requests to all worker
// processes, aggregates their MATCH/NO-MATCH/PENDING responses under the
// collective-operation legality rules, answers the importing program, and
// issues buddy-help to still-PENDING workers. For regions the program
// imports, it relays requests outward and broadcasts answers inward. It
// also drives startup region-geometry exchange and coordinated shutdown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/layout.hpp"
#include "core/options.hpp"
#include "core/protocol.hpp"
#include "runtime/process_context.hpp"

namespace ccf::core {

struct RepResult {
  std::uint64_t requests_forwarded = 0;
  std::uint64_t answers_sent = 0;
  std::uint64_t buddy_helps_sent = 0;
  std::uint64_t responses_received = 0;
  // Failure-tolerance accounting (all zero on a lossless fabric).
  std::uint64_t duplicates_ignored = 0;  ///< duplicate control messages absorbed
  std::uint64_t answers_resent = 0;      ///< cached answers replayed for retries
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t meta_resends = 0;        ///< geometry re-shipped after a nudge
  std::uint64_t forward_resends = 0;     ///< ProcForwards re-sent to silent ranks

  // Collective BufferPressure accounting (docs/MEMORY.md; zero unless a
  // memory budget is configured somewhere in the coupled system).
  std::uint64_t pressure_signals = 0;    ///< ProcPressure edges from own procs
  std::uint64_t pressure_notices = 0;    ///< Pressure notes sent to importer reps
  std::uint64_t pressure_broadcasts = 0; ///< PressureBcast fan-outs to own procs

  // Aggregation-tree accounting (docs/PROTOCOL.md; the tree-off defaults
  // leave frames_* zero and make wire_in the plain inbound message count).
  std::uint64_t wire_in = 0;             ///< inbound control wire messages
  std::uint64_t frames_in = 0;           ///< batched up-frames among them
  std::uint64_t frame_entries_in = 0;    ///< entries unpacked from up-frames
  std::uint64_t frames_out = 0;          ///< batched down-frames emitted
  std::uint64_t frame_entries_out = 0;   ///< entries packed into down-frames

  /// Observation hook: every collective answer determined on exported
  /// connections, ordered by (connection, determination order). The model-
  /// checking conformance checker compares this against the oracle.
  std::vector<AnswerMsg> answers;
};

/// Runs rep shard `shard` to completion. Intended as the process body for
/// the program's rep slot(s) in the deployment layout. A shard owns the
/// connections with `conn % shards == shard`; with the default single
/// shard that is every connection (the pre-shard behavior, byte for byte).
RepResult run_rep(runtime::ProcessContext& ctx, const Config& config,
                  const DeploymentLayout& layout, const std::string& program_name,
                  FrameworkOptions options = {}, int shard = 0);

}  // namespace ccf::core
