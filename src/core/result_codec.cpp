#include "core/result_codec.hpp"

#include <type_traits>
#include <utility>

#include "transport/serialize.hpp"

namespace ccf::core {

namespace {

using transport::Reader;
using transport::Writer;

// Both sides are forks of the same binary, so POD aggregates are shipped
// as raw bytes; anything with strings or nested vectors is walked field
// by field.
static_assert(std::is_trivially_copyable_v<BufferStats>);
static_assert(std::is_trivially_copyable_v<FaultToleranceStats>);
static_assert(std::is_trivially_copyable_v<mem::GovernorStats>);
static_assert(std::is_trivially_copyable_v<TraceEvent>);
static_assert(std::is_trivially_copyable_v<AnswerMsg>);
static_assert(std::is_trivially_copyable_v<SubRepResult>);

void put_export(Writer& w, const ExportRegionStats& e) {
  w.put_string(e.region);
  w.put(e.exports);
  w.put(e.transfers);
  w.put(e.buffer);
  w.put(e.bytes_delivered);
  w.put(e.bytes_pack_copied);
  w.put(e.sends_aliased);
  w.put(e.sends_packed);
  w.put_vector(e.export_seconds);
  w.put_vector(e.export_timestamps);
  w.put_vector(e.t_i);
  w.put(e.buddy_helps_received);
  w.put(e.local_decisions);
  w.put(e.matcher_evaluations);
  w.put(e.matcher_pending);
  w.put(e.stalls);
  w.put(e.stall_seconds);
  w.put(e.duplicate_requests);
  w.put(e.reordered_requests);
  w.put(e.degraded_conns);
}

ExportRegionStats get_export(Reader& r) {
  ExportRegionStats e;
  e.region = r.get_string();
  e.exports = r.get<std::uint64_t>();
  e.transfers = r.get<std::uint64_t>();
  e.buffer = r.get<BufferStats>();
  e.bytes_delivered = r.get<std::uint64_t>();
  e.bytes_pack_copied = r.get<std::uint64_t>();
  e.sends_aliased = r.get<std::uint64_t>();
  e.sends_packed = r.get<std::uint64_t>();
  e.export_seconds = r.get_vector<double>();
  e.export_timestamps = r.get_vector<Timestamp>();
  e.t_i = r.get_vector<double>();
  e.buddy_helps_received = r.get<std::uint64_t>();
  e.local_decisions = r.get<std::uint64_t>();
  e.matcher_evaluations = r.get<std::uint64_t>();
  e.matcher_pending = r.get<std::uint64_t>();
  e.stalls = r.get<std::uint64_t>();
  e.stall_seconds = r.get<double>();
  e.duplicate_requests = r.get<std::uint64_t>();
  e.reordered_requests = r.get<std::uint64_t>();
  e.degraded_conns = r.get<std::uint64_t>();
  return e;
}

void put_import(Writer& w, const ImportRegionStats& i) {
  w.put_string(i.region);
  w.put(i.imports);
  w.put(i.matches);
  w.put(i.no_matches);
  w.put_vector(i.import_seconds);
  w.put_vector(i.matched_timestamps);
  w.put(i.pressure_throttles);
  w.put(i.throttle_seconds);
}

ImportRegionStats get_import(Reader& r) {
  ImportRegionStats i;
  i.region = r.get_string();
  i.imports = r.get<std::uint64_t>();
  i.matches = r.get<std::uint64_t>();
  i.no_matches = r.get<std::uint64_t>();
  i.import_seconds = r.get_vector<double>();
  i.matched_timestamps = r.get_vector<Timestamp>();
  i.pressure_throttles = r.get<std::uint64_t>();
  i.throttle_seconds = r.get<double>();
  return i;
}

}  // namespace

std::vector<std::byte> encode_proc_result(
    const ProcStats& stats, const std::map<std::string, std::string>& traces,
    const std::map<std::string, std::vector<TraceEvent>>& events) {
  Writer w;
  w.put<std::uint64_t>(stats.exports.size());
  for (const auto& e : stats.exports) put_export(w, e);
  w.put<std::uint64_t>(stats.imports.size());
  for (const auto& i : stats.imports) put_import(w, i);
  w.put(stats.ft);
  w.put(stats.finished_at);
  w.put(stats.governor);
  w.put(stats.pressure_signals);
  w.put(stats.pressure_notices);
  w.put<std::uint64_t>(traces.size());
  for (const auto& [region, listing] : traces) {
    w.put_string(region);
    w.put_string(listing);
  }
  w.put<std::uint64_t>(events.size());
  for (const auto& [region, list] : events) {
    w.put_string(region);
    w.put_vector(list);
  }
  return w.take_bytes();
}

void decode_proc_result(const std::vector<std::byte>& bytes, ProcStats& stats,
                        std::map<std::string, std::string>& traces,
                        std::map<std::string, std::vector<TraceEvent>>& events) {
  Reader r(transport::make_payload(std::vector<std::byte>(bytes)));
  stats = ProcStats{};
  const auto n_exports = r.get<std::uint64_t>();
  stats.exports.reserve(static_cast<std::size_t>(n_exports));
  for (std::uint64_t k = 0; k < n_exports; ++k) stats.exports.push_back(get_export(r));
  const auto n_imports = r.get<std::uint64_t>();
  stats.imports.reserve(static_cast<std::size_t>(n_imports));
  for (std::uint64_t k = 0; k < n_imports; ++k) stats.imports.push_back(get_import(r));
  stats.ft = r.get<FaultToleranceStats>();
  stats.finished_at = r.get<double>();
  stats.governor = r.get<mem::GovernorStats>();
  stats.pressure_signals = r.get<std::uint64_t>();
  stats.pressure_notices = r.get<std::uint64_t>();
  traces.clear();
  const auto n_traces = r.get<std::uint64_t>();
  for (std::uint64_t k = 0; k < n_traces; ++k) {
    std::string region = r.get_string();
    traces[std::move(region)] = r.get_string();
  }
  events.clear();
  const auto n_events = r.get<std::uint64_t>();
  for (std::uint64_t k = 0; k < n_events; ++k) {
    std::string region = r.get_string();
    events[std::move(region)] = r.get_vector<TraceEvent>();
  }
  CCF_CHECK(r.exhausted(), "trailing bytes in encoded process result");
}

std::vector<std::byte> encode_rep_result(const RepResult& result) {
  Writer w;
  w.put(result.requests_forwarded);
  w.put(result.answers_sent);
  w.put(result.buddy_helps_sent);
  w.put(result.responses_received);
  w.put(result.duplicates_ignored);
  w.put(result.answers_resent);
  w.put(result.heartbeats_sent);
  w.put(result.meta_resends);
  w.put(result.forward_resends);
  w.put(result.pressure_signals);
  w.put(result.pressure_notices);
  w.put(result.pressure_broadcasts);
  w.put(result.wire_in);
  w.put(result.frames_in);
  w.put(result.frame_entries_in);
  w.put(result.frames_out);
  w.put(result.frame_entries_out);
  w.put_vector(result.answers);
  return w.take_bytes();
}

RepResult decode_rep_result(const std::vector<std::byte>& bytes) {
  Reader r(transport::make_payload(std::vector<std::byte>(bytes)));
  RepResult out;
  out.requests_forwarded = r.get<std::uint64_t>();
  out.answers_sent = r.get<std::uint64_t>();
  out.buddy_helps_sent = r.get<std::uint64_t>();
  out.responses_received = r.get<std::uint64_t>();
  out.duplicates_ignored = r.get<std::uint64_t>();
  out.answers_resent = r.get<std::uint64_t>();
  out.heartbeats_sent = r.get<std::uint64_t>();
  out.meta_resends = r.get<std::uint64_t>();
  out.forward_resends = r.get<std::uint64_t>();
  out.pressure_signals = r.get<std::uint64_t>();
  out.pressure_notices = r.get<std::uint64_t>();
  out.pressure_broadcasts = r.get<std::uint64_t>();
  out.wire_in = r.get<std::uint64_t>();
  out.frames_in = r.get<std::uint64_t>();
  out.frame_entries_in = r.get<std::uint64_t>();
  out.frames_out = r.get<std::uint64_t>();
  out.frame_entries_out = r.get<std::uint64_t>();
  out.answers = r.get_vector<AnswerMsg>();
  CCF_CHECK(r.exhausted(), "trailing bytes in encoded rep result");
  return out;
}

std::vector<std::byte> encode_subrep_result(const SubRepResult& result) {
  Writer w;
  w.put(result);
  return w.take_bytes();
}

SubRepResult decode_subrep_result(const std::vector<std::byte>& bytes) {
  Reader r(transport::make_payload(std::vector<std::byte>(bytes)));
  const auto out = r.get<SubRepResult>();
  CCF_CHECK(r.exhausted(), "trailing bytes in encoded sub-rep result");
  return out;
}

}  // namespace ccf::core
