// CoupledSystem: assembles and runs an entire coupled simulation in one
// simulated cluster (real threads or deterministic virtual time).
//
// Given a Config, it derives the deployment layout, installs the rep
// process for every program, wraps each worker process body with a
// ready-made CouplingRuntime, runs the cluster to completion, and captures
// per-process statistics and trace listings for the harness.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/coupling_runtime.hpp"
#include "core/rep.hpp"
#include "core/subrep.hpp"
#include "runtime/cluster.hpp"

namespace ccf::core {

class CoupledSystem {
 public:
  /// Worker process body: receives its CouplingRuntime (already bound to
  /// the right program and rank) and the raw ProcessContext.
  using ProgramBody = std::function<void(CouplingRuntime&, runtime::ProcessContext&)>;

  CoupledSystem(Config config, runtime::ClusterOptions cluster_options,
                FrameworkOptions framework_options);

  /// Installs the SPMD body run by every worker process of `program`.
  void set_program_body(const std::string& program, ProgramBody body);

  /// Runs all programs and reps to completion; propagates failures.
  void run();

  const Config& config() const { return config_; }
  const DeploymentLayout& layout() const { return layout_; }
  const FrameworkOptions& framework_options() const { return framework_options_; }

  /// End-of-run virtual (or wall) time.
  double end_time() const { return end_time_; }

  /// Statistics of one worker process (valid after run()).
  const ProcStats& proc_stats(const std::string& program, int rank) const;

  /// Trace listing of an exported region on one process ("" if untraced).
  const std::string& trace_listing(const std::string& program, int rank,
                                   const std::string& region) const;

  /// Structured trace events of an exported region on one process (empty
  /// if untraced). Same data as trace_listing, machine-checkable.
  const std::vector<TraceEvent>& trace_events(const std::string& program, int rank,
                                              const std::string& region) const;

  /// Program-wide rep counters and answers (valid after run()). With a
  /// sharded rep this is the merge over all shards: counters summed,
  /// answers re-grouped by connection in determination order.
  const RepResult& rep_result(const std::string& program) const;

  /// Aggregation-tree relay counters summed over the program's sub-reps
  /// (all zero when the program runs without a tree).
  const SubRepResult& subrep_result(const std::string& program) const;

  /// Message fabric a program's traffic rides under the selected cluster
  /// options: "sim" for the modeled fabrics (VirtualTime, or RealThreads
  /// over the in-memory fabric), "tcp" when the real backend is selected
  /// and any of the program's connections crosses nodes, "shm" otherwise.
  /// Feeds the report CSV's `transport` column.
  std::string transport_kind(const std::string& program) const;

  /// Structural transport counters of the run (all zero for backends that
  /// do not track them; valid after run()).
  const transport::TransportCounters& transport_counters() const { return transport_counters_; }

 private:
  /// Applies CCF_NODES and derives the per-program node assignment plus
  /// the transport's node/identity maps (entries already present in
  /// cluster_options_.transport are kept).
  void configure_transport();

  struct ProcSlot {
    ProcStats stats;
    std::map<std::string, std::string> traces;  ///< region -> listing
    std::map<std::string, std::vector<TraceEvent>> events;  ///< region -> events
  };

  Config config_;
  runtime::ClusterOptions cluster_options_;
  FrameworkOptions framework_options_;
  DeploymentLayout layout_;
  std::map<std::string, ProgramBody> bodies_;
  std::map<std::string, std::vector<ProcSlot>> slots_;
  std::map<std::string, std::vector<RepResult>> rep_shard_results_;      ///< raw, per shard
  std::map<std::string, std::vector<SubRepResult>> subrep_node_results_; ///< raw, per node
  std::map<std::string, RepResult> rep_results_;
  std::map<std::string, SubRepResult> subrep_results_;
  std::map<std::string, int> program_node_;  ///< deployment node per program
  transport::TransportCounters transport_counters_;
  double end_time_ = 0;
  bool ran_ = false;
};

}  // namespace ccf::core
