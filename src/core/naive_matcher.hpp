// The original linear matching engine, preserved verbatim as a reference.
//
// NaiveHistory is the pre-index ExportHistory: best_candidate() scans the
// candidate window linearly and there is no pending-request index — every
// outstanding request must be re-evaluated from scratch after each export.
// It is deliberately simple enough to be obviously correct, which makes it
// the differential-testing reference for the interval-indexed engine
// (tests/core/matcher_fuzz_test.cpp) and the per-request-re-evaluation
// baseline of the matcher scaling bench (bench/bench_matcher.cpp). The
// model-checking oracle (modelcheck/oracle.cpp) is an even simpler
// sequential re-derivation and stays independent of both engines.
//
// Shares MatchQuery/MatchAnswer and the CCF_MC_MUTATE_MATCHER mutation
// hook with the indexed engine so the two can be driven with identical
// operation sequences and compared answer-for-answer, counter-for-counter.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/matcher.hpp"
#include "core/timestamp.hpp"

namespace ccf::core {

class NaiveHistory {
 public:
  using EvalCounters = ExportHistory::EvalCounters;

  void record(Timestamp t);
  void finalize();
  bool finalized() const { return finalized_; }

  Timestamp latest() const { return latest_; }
  std::size_t count() const { return timestamps_.size(); }
  bool empty() const { return timestamps_.empty(); }

  /// Linear window scan — O(window) per call.
  std::optional<Timestamp> best_candidate(const MatchQuery& query) const;

  /// Identical decidability semantics to ExportHistory::evaluate(), built
  /// on the linear best_candidate().
  MatchAnswer evaluate(const MatchQuery& query) const;

  void prune_below(Timestamp t);
  void prune_through(Timestamp t);

  const std::vector<Timestamp>& timestamps() const { return timestamps_; }
  const EvalCounters& eval_counters() const { return eval_counters_; }

 private:
  std::vector<Timestamp> timestamps_;
  Timestamp latest_ = kNeverExported;
  Timestamp clip_ = kNeverExported;
  bool clip_exclusive_ = false;
  bool finalized_ = false;
  mutable EvalCounters eval_counters_;
};

}  // namespace ccf::core
