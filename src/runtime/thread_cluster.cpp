#include "runtime/thread_cluster.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>

#include "transport/fault_transport.hpp"
#include "util/check.hpp"
#include "util/work.hpp"

namespace ccf::runtime {

namespace {

using clock = std::chrono::steady_clock;

class ThreadContext final : public ProcessContext {
 public:
  ThreadContext(ProcId id, std::shared_ptr<transport::Endpoint> endpoint,
                clock::time_point epoch, const CopyCostModel& copy_cost)
      : id_(id), endpoint_(std::move(endpoint)), epoch_(epoch), copy_cost_(copy_cost) {}

  ProcId id() const override { return id_; }

  void send(ProcId dst, Tag tag, Payload payload) override {
    Message m;
    m.src = id_;
    m.dst = dst;
    m.tag = tag;
    m.payload = payload ? std::move(payload) : transport::empty_payload();
    endpoint_->send(std::move(m));
  }

  Message recv(const MatchSpec& spec) override { return endpoint_->inbox().receive(spec); }

  std::optional<Message> try_recv(const MatchSpec& spec) override {
    return endpoint_->inbox().try_receive(spec);
  }

  bool probe(const MatchSpec& spec) override { return endpoint_->inbox().probe(spec); }

  std::optional<Message> recv_until(const MatchSpec& spec, double deadline) override {
    const auto abs_deadline =
        epoch_ + std::chrono::duration_cast<clock::duration>(std::chrono::duration<double>(deadline));
    return endpoint_->inbox().receive_until(spec, abs_deadline);
  }

  double now() const override {
    return std::chrono::duration<double>(clock::now() - epoch_).count();
  }

  void compute(double seconds) override { util::spin_for_us(seconds * 1e6); }

  void copy(void* dst, const void* src, std::size_t bytes) override {
    std::memcpy(dst, src, bytes);
  }

  void charge_copy_cost(std::size_t) override {
    // Real mode: the actual operation already took real time; nothing to add.
  }

  const CopyCostModel& copy_cost_model() const override { return copy_cost_; }

  bool transport_pressure() const override { return endpoint_->under_pressure(); }

 private:
  ProcId id_;
  std::shared_ptr<transport::Endpoint> endpoint_;
  clock::time_point epoch_;
  const CopyCostModel& copy_cost_;
};

}  // namespace

ThreadCluster::ThreadCluster(ClusterOptions options) : options_(std::move(options)) {}

void ThreadCluster::add_process(ProcId id, ProcessBody body) {
  CCF_REQUIRE(!ran_, "cannot add processes after run()");
  CCF_REQUIRE(body != nullptr, "process body must be callable");
  CCF_REQUIRE(id >= 0, "process id must be non-negative, got " << id);
  CCF_REQUIRE(ids_.insert(id).second, "process id " << id << " already registered");
  registrations_.push_back({id, std::move(body)});
}

void ThreadCluster::run() {
  CCF_REQUIRE(!ran_, "run() called twice");
  CCF_REQUIRE(!registrations_.empty(), "no processes registered");
  ran_ = true;

  // The transport is built at run() so the membership is complete, and
  // kept on the cluster so counters survive the run. Faults compose as a
  // decorator over whichever backend was selected.
  transport_ = transport::make_transport(options_.transport,
                                         std::vector<ProcId>(ids_.begin(), ids_.end()));
  std::shared_ptr<transport::Transport> fabric = transport_;
  if (options_.faults != nullptr)
    fabric = std::make_shared<transport::FaultTransport>(fabric, options_.faults);

  const auto epoch = clock::now();
  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(registrations_.size());
  for (auto& reg : registrations_) {
    threads.emplace_back([&, this, fabric] {
      try {
        ThreadContext ctx(reg.id, fabric->attach(reg.id), epoch, options_.copy_cost);
        reg.body(ctx);
      } catch (const transport::MailboxClosed&) {
        // Teardown path after another process failed; keep the first error.
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        fabric->shutdown();  // unblock peers waiting in recv()
      }
    });
  }
  for (auto& t : threads) t.join();
  end_time_ = std::chrono::duration<double>(clock::now() - epoch).count();

  if (first_error) std::rethrow_exception(first_error);
}

transport::TransportCounters ThreadCluster::transport_counters() const {
  return transport_ == nullptr ? transport::TransportCounters{} : transport_->counters();
}

}  // namespace ccf::runtime
