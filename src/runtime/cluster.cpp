#include "runtime/cluster.hpp"

#include "runtime/thread_cluster.hpp"
#include "runtime/virtual_time_cluster.hpp"
#include "util/check.hpp"

namespace ccf::runtime {

std::unique_ptr<Cluster> make_cluster(const ClusterOptions& options) {
  switch (options.mode) {
    case ExecutionMode::RealThreads:
      return std::make_unique<ThreadCluster>(options);
    case ExecutionMode::VirtualTime:
      return std::make_unique<VirtualTimeCluster>(options);
  }
  throw util::InvalidArgument("unknown execution mode");
}

}  // namespace ccf::runtime
