#include "runtime/cluster.hpp"

#include <cstdlib>
#include <string>

#include "runtime/process_cluster.hpp"
#include "runtime/thread_cluster.hpp"
#include "runtime/virtual_time_cluster.hpp"
#include "util/check.hpp"

namespace ccf::runtime {

std::unique_ptr<Cluster> make_cluster(const ClusterOptions& options) {
  switch (options.mode) {
    case ExecutionMode::RealThreads:
      return std::make_unique<ThreadCluster>(options);
    case ExecutionMode::VirtualTime:
      return std::make_unique<VirtualTimeCluster>(options);
    case ExecutionMode::RealProcesses:
      return std::make_unique<ProcessCluster>(options);
  }
  throw util::InvalidArgument("unknown execution mode");
}

bool apply_env_overrides(ClusterOptions& options) {
  bool changed = false;
  if (const char* mode = std::getenv("CCF_MODE"); mode != nullptr && *mode != '\0') {
    const std::string m = mode;
    if (m == "sim")
      options.mode = ExecutionMode::VirtualTime;
    else if (m == "threads")
      options.mode = ExecutionMode::RealThreads;
    else if (m == "procs")
      options.mode = ExecutionMode::RealProcesses;
    else
      throw util::InvalidArgument("CCF_MODE must be sim|threads|procs, got '" + m + "'");
    changed = true;
  }
  if (const char* t = std::getenv("CCF_TRANSPORT"); t != nullptr && *t != '\0') {
    const std::string v = t;
    if (v == "fabric")
      options.transport.kind = transport::TransportKind::InMemory;
    else if (v == "real")
      options.transport.kind = transport::TransportKind::Real;
    else
      throw util::InvalidArgument("CCF_TRANSPORT must be fabric|real, got '" + v + "'");
    changed = true;
  }
  return changed;
}

}  // namespace ccf::runtime
