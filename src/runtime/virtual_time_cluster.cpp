#include "runtime/virtual_time_cluster.hpp"

#include <cstring>

#include "util/check.hpp"

namespace ccf::runtime {

namespace {

class VirtualContext final : public ProcessContext {
 public:
  VirtualContext(simtime::SimContext& ctx, const CopyCostModel& copy_cost)
      : ctx_(ctx), copy_cost_(copy_cost) {}

  ProcId id() const override { return ctx_.id(); }

  void send(ProcId dst, Tag tag, Payload payload) override {
    ctx_.send(dst, tag, std::move(payload));
  }

  Message recv(const MatchSpec& spec) override { return ctx_.recv(spec); }

  std::optional<Message> try_recv(const MatchSpec& spec) override {
    return ctx_.try_recv(spec);
  }

  bool probe(const MatchSpec& spec) override { return ctx_.probe(spec); }

  std::optional<Message> recv_until(const MatchSpec& spec, double deadline) override {
    return ctx_.recv_until(spec, deadline);
  }

  double now() const override { return ctx_.now(); }

  void compute(double seconds) override { ctx_.advance(seconds); }

  void copy(void* dst, const void* src, std::size_t bytes) override {
    std::memcpy(dst, src, bytes);
    ctx_.advance(copy_cost_.cost_seconds(bytes));
  }

  void charge_copy_cost(std::size_t bytes) override {
    ctx_.advance(copy_cost_.cost_seconds(bytes));
  }

  const CopyCostModel& copy_cost_model() const override { return copy_cost_; }

 private:
  simtime::SimContext& ctx_;
  const CopyCostModel& copy_cost_;
};

}  // namespace

VirtualTimeCluster::VirtualTimeCluster(ClusterOptions options)
    : options_(std::move(options)),
      cluster_(simtime::VirtualCluster::Options{options_.latency, options_.faults,
                                                options_.max_events}) {}

void VirtualTimeCluster::add_process(ProcId id, ProcessBody body) {
  CCF_REQUIRE(!ran_, "cannot add processes after run()");
  CCF_REQUIRE(body != nullptr, "process body must be callable");
  cluster_.add_process(id, [this, body = std::move(body)](simtime::SimContext& sim_ctx) {
    VirtualContext ctx(sim_ctx, options_.copy_cost);
    body(ctx);
  });
}

void VirtualTimeCluster::run() {
  CCF_REQUIRE(!ran_, "run() called twice");
  ran_ = true;
  cluster_.run();
}

}  // namespace ccf::runtime
