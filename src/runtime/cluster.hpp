// Cluster launcher: registers process bodies, runs them to completion under
// the selected execution mode, and propagates the first failure.
#pragma once

#include <cstdint>
#include <memory>

#include "runtime/process_context.hpp"
#include "transport/fault.hpp"

namespace ccf::runtime {

enum class ExecutionMode {
  RealThreads,  ///< one OS thread per process, wall-clock time
  VirtualTime,  ///< deterministic discrete-event virtual time
};

struct ClusterOptions {
  ExecutionMode mode = ExecutionMode::VirtualTime;
  std::shared_ptr<const transport::LatencyModel> latency = transport::zero_model();
  CopyCostModel copy_cost = CopyCostModel::pentium4_preset();
  /// Optional seeded fault injector applied to every send (both modes).
  std::shared_ptr<transport::FaultInjector> faults;
  /// Livelock guard for VirtualTime mode: the run throws once this many
  /// events have been processed. Harnesses that execute many short runs
  /// (model checking, shrinking) set a small bound so a livelocked
  /// scenario surfaces as a fast failure instead of an apparent hang.
  std::uint64_t max_events = 500'000'000;
};

class Cluster {
 public:
  virtual ~Cluster() = default;

  /// Registers a process. Ids must be unique and non-negative.
  virtual void add_process(ProcId id, ProcessBody body) = 0;

  /// Runs all processes to completion; rethrows the first process failure.
  virtual void run() = 0;

  /// Virtual end time (VirtualTime mode) or elapsed wall seconds.
  virtual double end_time() const = 0;
};

std::unique_ptr<Cluster> make_cluster(const ClusterOptions& options = {});

}  // namespace ccf::runtime
