// Cluster launcher: registers process bodies, runs them to completion under
// the selected execution mode, and propagates the first failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/process_context.hpp"
#include "transport/fault.hpp"
#include "transport/transport.hpp"

namespace ccf::runtime {

enum class ExecutionMode {
  RealThreads,    ///< one OS thread per process, wall-clock time
  VirtualTime,    ///< deterministic discrete-event virtual time
  RealProcesses,  ///< one forked OS process per process (runtime/process_cluster.hpp)
};

struct ClusterOptions {
  ExecutionMode mode = ExecutionMode::VirtualTime;
  std::shared_ptr<const transport::LatencyModel> latency = transport::zero_model();
  CopyCostModel copy_cost = CopyCostModel::pentium4_preset();
  /// Optional seeded fault injector applied to every send (both modes).
  std::shared_ptr<transport::FaultInjector> faults;
  /// Livelock guard for VirtualTime mode: the run throws once this many
  /// events have been processed. Harnesses that execute many short runs
  /// (model checking, shrinking) set a small bound so a livelocked
  /// scenario surfaces as a fast failure instead of an apparent hang.
  std::uint64_t max_events = 500'000'000;
  /// Message fabric for the wall-clock modes (RealThreads and
  /// RealProcesses): the in-memory fabric by default, or the real SHM+TCP
  /// backend. Ignored by VirtualTime, which models the network instead of
  /// running one.
  transport::TransportOptions transport;
};

/// Ships a process body's results across a process boundary. Bodies are
/// closures that write into launcher-side slots; under ExecutionMode::
/// RealProcesses those writes land in the child's copy-on-write memory,
/// so `encode` runs in the child after the body returns and `decode`
/// applies the bytes to the real slots in the launcher. In-process modes
/// ignore the channel — the body's writes were already direct.
struct ResultChannel {
  std::function<std::vector<std::byte>()> encode;
  std::function<void(const std::vector<std::byte>&)> decode;
};

class Cluster {
 public:
  virtual ~Cluster() = default;

  /// Registers a process. Ids must be unique and non-negative.
  virtual void add_process(ProcId id, ProcessBody body) = 0;

  /// Registers a process whose results need shipping across a process
  /// boundary. In-process backends ignore `channel`.
  virtual void add_process(ProcId id, ProcessBody body, ResultChannel channel) {
    (void)channel;
    add_process(id, std::move(body));
  }

  /// Runs all processes to completion; rethrows the first process failure.
  virtual void run() = 0;

  /// Virtual end time (VirtualTime mode) or elapsed wall seconds.
  virtual double end_time() const = 0;

  /// Structural transport counters after run(); all zero for backends
  /// that do not track them (VirtualTime).
  virtual transport::TransportCounters transport_counters() const { return {}; }
};

std::unique_ptr<Cluster> make_cluster(const ClusterOptions& options = {});

/// Applies deployment environment overrides to `options` (docs/DEPLOY.md):
///   CCF_MODE=sim|threads|procs   execution mode
///   CCF_TRANSPORT=fabric|real    wall-clock message fabric
/// Unset or empty variables leave `options` untouched; unknown values
/// throw InvalidArgument. Returns true if anything changed.
bool apply_env_overrides(ClusterOptions& options);

}  // namespace ccf::runtime
