#include "runtime/process_cluster.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "transport/fault_transport.hpp"
#include "util/check.hpp"
#include "util/work.hpp"

namespace ccf::runtime {

namespace {

using clock = std::chrono::steady_clock;

/// Wall-clock context over a transport endpoint; semantics identical to
/// ThreadCluster's context (the modes must be interchangeable).
class ProcContext final : public ProcessContext {
 public:
  ProcContext(ProcId id, std::shared_ptr<transport::Endpoint> endpoint,
              clock::time_point epoch, const CopyCostModel& copy_cost)
      : id_(id), endpoint_(std::move(endpoint)), epoch_(epoch), copy_cost_(copy_cost) {}

  ProcId id() const override { return id_; }

  void send(ProcId dst, Tag tag, Payload payload) override {
    Message m;
    m.src = id_;
    m.dst = dst;
    m.tag = tag;
    m.payload = payload ? std::move(payload) : transport::empty_payload();
    endpoint_->send(std::move(m));
  }

  Message recv(const MatchSpec& spec) override { return endpoint_->inbox().receive(spec); }

  std::optional<Message> try_recv(const MatchSpec& spec) override {
    return endpoint_->inbox().try_receive(spec);
  }

  bool probe(const MatchSpec& spec) override { return endpoint_->inbox().probe(spec); }

  std::optional<Message> recv_until(const MatchSpec& spec, double deadline) override {
    const auto abs_deadline =
        epoch_ + std::chrono::duration_cast<clock::duration>(std::chrono::duration<double>(deadline));
    return endpoint_->inbox().receive_until(spec, abs_deadline);
  }

  double now() const override {
    return std::chrono::duration<double>(clock::now() - epoch_).count();
  }

  void compute(double seconds) override { util::spin_for_us(seconds * 1e6); }

  void copy(void* dst, const void* src, std::size_t bytes) override {
    std::memcpy(dst, src, bytes);
  }

  void charge_copy_cost(std::size_t) override {}

  const CopyCostModel& copy_cost_model() const override { return copy_cost_; }

  bool transport_pressure() const override { return endpoint_->under_pressure(); }

 private:
  ProcId id_;
  std::shared_ptr<transport::Endpoint> endpoint_;
  clock::time_point epoch_;
  const CopyCostModel& copy_cost_;
};

// Child -> launcher result record: [u8 status][u64 len][len bytes].
// status 0 = success (bytes are the encoded results), 1 = error (bytes
// are the what() text), 2 = teardown after a sibling failure.
enum : std::uint8_t { kChildOk = 0, kChildError = 1, kChildTorndown = 2 };

void write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // launcher gone; nothing useful left to do
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void write_record(int fd, std::uint8_t status, const std::vector<std::byte>& bytes) {
  write_all(fd, &status, sizeof status);
  const std::uint64_t len = bytes.size();
  write_all(fd, &len, sizeof len);
  if (!bytes.empty()) write_all(fd, bytes.data(), bytes.size());
}

/// Reads one child record; false when the pipe EOFed mid-record (the
/// child died before reporting).
bool read_record(int fd, std::uint8_t& status, std::vector<std::byte>& bytes) {
  auto read_exact = [fd](void* data, std::size_t n) {
    char* p = static_cast<char*>(data);
    while (n > 0) {
      const ssize_t r = ::read(fd, p, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (r == 0) return false;
      p += r;
      n -= static_cast<std::size_t>(r);
    }
    return true;
  };
  if (!read_exact(&status, sizeof status)) return false;
  std::uint64_t len = 0;
  if (!read_exact(&len, sizeof len)) return false;
  bytes.resize(static_cast<std::size_t>(len));
  return bytes.empty() || read_exact(bytes.data(), bytes.size());
}

}  // namespace

ProcessCluster::ProcessCluster(ClusterOptions options) : options_(std::move(options)) {
  // The in-memory fabric cannot cross a process boundary; multi-process
  // mode always rides the real backend.
  options_.transport.kind = transport::TransportKind::Real;
}

void ProcessCluster::add_process(ProcId id, ProcessBody body) {
  add_process(id, std::move(body), ResultChannel{});
}

void ProcessCluster::add_process(ProcId id, ProcessBody body, ResultChannel channel) {
  CCF_REQUIRE(!ran_, "cannot add processes after run()");
  CCF_REQUIRE(body != nullptr, "process body must be callable");
  CCF_REQUIRE(id >= 0, "process id must be non-negative, got " << id);
  CCF_REQUIRE(ids_.insert(id).second, "process id " << id << " already registered");
  registrations_.push_back({id, std::move(body), std::move(channel)});
}

void ProcessCluster::run() {
  CCF_REQUIRE(!ran_, "run() called twice");
  CCF_REQUIRE(!registrations_.empty(), "no processes registered");
  ran_ = true;

  // Everything shared — rings, doorbells, listeners, counters — exists
  // before the first fork, so children only inherit, never rendezvous on
  // creation order.
  transport_ = transport::make_transport(options_.transport,
                                         std::vector<ProcId>(ids_.begin(), ids_.end()));
  std::shared_ptr<transport::Transport> fabric = transport_;
  if (options_.faults != nullptr)
    fabric = std::make_shared<transport::FaultTransport>(fabric, options_.faults);

  const std::size_t n = registrations_.size();
  std::vector<int> read_fd(n, -1), write_fd(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    int fds[2];
    CCF_CHECK(::pipe(fds) == 0, "pipe() failed: " << std::strerror(errno));
    read_fd[i] = fds[0];
    write_fd[i] = fds[1];
  }

  const auto epoch = clock::now();
  std::vector<pid_t> pids(n, -1);
  // Fork every child before spawning any launcher-side thread: a fork
  // while another thread holds an allocator lock would deadlock the child.
  for (std::size_t i = 0; i < n; ++i) {
    const pid_t pid = ::fork();
    CCF_CHECK(pid >= 0, "fork() failed: " << std::strerror(errno));
    if (pid != 0) {
      pids[i] = pid;
      continue;
    }
    // Child: keep only this registration's write end.
    for (std::size_t j = 0; j < n; ++j) {
      ::close(read_fd[j]);
      if (j != i) ::close(write_fd[j]);
    }
    std::uint8_t status = kChildOk;
    std::vector<std::byte> result;
    try {
      Registration& reg = registrations_[i];
      ProcContext ctx(reg.id, fabric->attach(reg.id), epoch, options_.copy_cost);
      reg.body(ctx);
      if (reg.channel.encode != nullptr) result = reg.channel.encode();
    } catch (const transport::MailboxClosed&) {
      status = kChildTorndown;
      result.clear();
    } catch (const std::exception& e) {
      status = kChildError;
      const char* what = e.what();
      result.assign(reinterpret_cast<const std::byte*>(what),
                    reinterpret_cast<const std::byte*>(what) + std::strlen(what));
    } catch (...) {
      status = kChildError;
      static const char kUnknown[] = "unknown child error";
      result.assign(reinterpret_cast<const std::byte*>(kUnknown),
                    reinterpret_cast<const std::byte*>(kUnknown) + sizeof kUnknown - 1);
    }
    write_record(write_fd[i], status, result);
    ::close(write_fd[i]);
    // _exit: no launcher-side destructors or stdio flushes in the child.
    ::_exit(status == kChildOk || status == kChildTorndown ? 0 : 1);
  }
  for (int fd : write_fd) ::close(fd);

  // Collect results. On the first child error the shared closed flag
  // tears the remaining children down, so every pipe EOFs promptly.
  std::vector<std::uint8_t> status(n, kChildTorndown);
  std::vector<std::vector<std::byte>> blobs(n);
  // Plain byte flags, not vector<bool>: reader threads write distinct
  // elements concurrently.
  std::vector<std::uint8_t> reported(n, 0);
  std::mutex shutdown_mutex;
  bool shut = false;
  auto shutdown_once = [&] {
    std::lock_guard<std::mutex> lock(shutdown_mutex);
    if (!shut) {
      shut = true;
      transport_->shutdown();
    }
  };
  std::vector<std::thread> readers;
  readers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    readers.emplace_back([&, i] {
      reported[i] = read_record(read_fd[i], status[i], blobs[i]) ? 1 : 0;
      if (reported[i] == 0 || status[i] == kChildError) shutdown_once();
    });
  }
  for (auto& t : readers) t.join();
  for (int fd : read_fd) ::close(fd);

  std::vector<int> exit_status(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    int ws = 0;
    while (::waitpid(pids[i], &ws, 0) < 0 && errno == EINTR) {}
    exit_status[i] = ws;
  }
  end_time_ = std::chrono::duration<double>(clock::now() - epoch).count();

  // First reported error wins, matching the thread backend's contract.
  for (std::size_t i = 0; i < n; ++i) {
    if (reported[i] && status[i] == kChildError)
      throw util::Error("process " + std::to_string(registrations_[i].id) + " failed: " +
                        std::string(reinterpret_cast<const char*>(blobs[i].data()),
                                    blobs[i].size()));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!reported[i]) {
      const int ws = exit_status[i];
      std::string how = WIFSIGNALED(ws)
                            ? "killed by signal " + std::to_string(WTERMSIG(ws))
                            : "exited with status " +
                                  std::to_string(WIFEXITED(ws) ? WEXITSTATUS(ws) : ws);
      throw util::Error("process " + std::to_string(registrations_[i].id) +
                        " died without reporting (" + how + ")");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (status[i] == kChildOk && registrations_[i].channel.decode != nullptr)
      registrations_[i].channel.decode(blobs[i]);
  }
}

transport::TransportCounters ProcessCluster::transport_counters() const {
  return transport_ == nullptr ? transport::TransportCounters{} : transport_->counters();
}

}  // namespace ccf::runtime
