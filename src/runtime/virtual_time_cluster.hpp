// Virtual-time execution backend: adapts the deterministic discrete-event
// executor (simtime::VirtualCluster) to the ProcessContext interface.
// compute() advances the virtual clock; copy() performs the real memcpy
// (data correctness is still verified end-to-end) *and* charges the
// modeled buffering cost in virtual time.
#pragma once

#include <memory>
#include <vector>

#include "runtime/cluster.hpp"
#include "simtime/virtual_cluster.hpp"

namespace ccf::runtime {

class VirtualTimeCluster final : public Cluster {
 public:
  explicit VirtualTimeCluster(ClusterOptions options);

  void add_process(ProcId id, ProcessBody body) override;
  void run() override;
  double end_time() const override { return cluster_.end_time(); }

  std::uint64_t events_processed() const { return cluster_.events_processed(); }
  std::uint64_t messages_delivered() const { return cluster_.messages_delivered(); }

 private:
  ClusterOptions options_;
  simtime::VirtualCluster cluster_;
  bool ran_ = false;
};

}  // namespace ccf::runtime
