// Execution-mode-independent process interface.
//
// All framework code (collectives, redistribution, the coupling runtime,
// the simulation components) is written against ProcessContext, so the same
// program bodies run either on real threads with a real clock
// (ThreadCluster — functional/integration testing) or under the
// deterministic virtual-time executor (VirtualTimeCluster — the paper's
// timing experiments). See DESIGN.md §5.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>

#include "transport/latency.hpp"
#include "transport/message.hpp"

namespace ccf::runtime {

using transport::CopyCostModel;
using transport::kAnyProc;
using transport::kAnyTag;
using transport::MatchSpec;
using transport::Message;
using transport::Payload;
using transport::ProcId;
using transport::Tag;

class ProcessContext {
 public:
  virtual ~ProcessContext() = default;

  /// Cluster-global id of this process.
  virtual ProcId id() const = 0;

  /// Non-blocking, ordered, reliable point-to-point send.
  virtual void send(ProcId dst, Tag tag, Payload payload) = 0;

  /// Blocking tagged receive (wildcards allowed).
  virtual Message recv(const MatchSpec& spec) = 0;

  /// Non-blocking receive.
  virtual std::optional<Message> try_recv(const MatchSpec& spec) = 0;

  /// True if a matching message is already available.
  virtual bool probe(const MatchSpec& spec) = 0;

  /// Blocking receive with a deadline in now()-seconds; nullopt on timeout.
  virtual std::optional<Message> recv_until(const MatchSpec& spec, double deadline) = 0;

  /// Seconds since cluster start — virtual or real depending on the mode.
  virtual double now() const = 0;

  /// Performs `seconds` of application computation (spins in real mode,
  /// advances the virtual clock in virtual mode).
  virtual void compute(double seconds) = 0;

  /// Copies `bytes` from src to dst *and* charges the modeled buffering
  /// cost in virtual mode. This is the operation buddy-help elides.
  virtual void copy(void* dst, const void* src, std::size_t bytes) = 0;

  /// Charges modeled time for a copy without touching memory. Used when
  /// only the accounting matters (e.g., modeling a free()).
  virtual void charge_copy_cost(std::size_t bytes) = 0;

  /// Cost model used by copy()/charge_copy_cost().
  virtual const CopyCostModel& copy_cost_model() const = 0;

  /// Advisory: true while the transport's egress for this process is
  /// congested (real backend only — TCP write queue over its high
  /// watermark or an SHM ring persistently full). The coupling runtime
  /// folds this into the collective BufferPressure protocol exactly like
  /// local memory pressure. Always false on modeled fabrics.
  virtual bool transport_pressure() const { return false; }
};

using ProcessBody = std::function<void(ProcessContext&)>;

}  // namespace ccf::runtime
