// Real-thread execution backend: one OS thread per simulated process over
// the in-memory Network, with wall-clock timing and real memcpys.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/cluster.hpp"
#include "transport/network.hpp"

namespace ccf::runtime {

class ThreadCluster final : public Cluster {
 public:
  explicit ThreadCluster(ClusterOptions options);

  void add_process(ProcId id, ProcessBody body) override;
  void run() override;
  double end_time() const override { return end_time_; }

 private:
  struct Registration {
    ProcId id;
    ProcessBody body;
  };

  ClusterOptions options_;
  transport::Network network_;
  std::vector<Registration> registrations_;
  double end_time_ = 0.0;
  bool ran_ = false;
};

}  // namespace ccf::runtime
