// Real-thread execution backend: one OS thread per simulated process over
// a Transport (the in-memory fabric by default, or the real SHM+TCP
// backend), with wall-clock timing and real memcpys.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "runtime/cluster.hpp"
#include "transport/transport.hpp"

namespace ccf::runtime {

class ThreadCluster final : public Cluster {
 public:
  explicit ThreadCluster(ClusterOptions options);

  void add_process(ProcId id, ProcessBody body) override;
  void run() override;
  double end_time() const override { return end_time_; }
  transport::TransportCounters transport_counters() const override;

 private:
  struct Registration {
    ProcId id;
    ProcessBody body;
  };

  ClusterOptions options_;
  std::set<ProcId> ids_;
  std::vector<Registration> registrations_;
  std::shared_ptr<transport::Transport> transport_;  ///< built by run()
  double end_time_ = 0.0;
  bool ran_ = false;
};

}  // namespace ccf::runtime
