// Multi-process execution backend: one forked OS process per simulated
// process over the real SHM+TCP transport.
//
// The launcher builds the RealTransport first (shared rings, doorbells,
// TCP listeners, rendezvous file), then forks one child per registered
// body. Children attach their endpoint, run the body against a wall-clock
// context identical to ThreadCluster's, and ship their results back over
// a per-child pipe using the registration's ResultChannel (bodies are
// closures writing into launcher-side slots; under fork those writes land
// in copy-on-write memory, so the child re-encodes them explicitly).
//
// Failure handling: the first child that reports an error triggers a
// transport shutdown through the shared mapping (closed flag + doorbells),
// which closes every sibling's mailbox and lets them unwind as on the
// thread backend; the launcher then rethrows the first error.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "runtime/cluster.hpp"
#include "transport/transport.hpp"

namespace ccf::runtime {

class ProcessCluster final : public Cluster {
 public:
  explicit ProcessCluster(ClusterOptions options);

  void add_process(ProcId id, ProcessBody body) override;
  void add_process(ProcId id, ProcessBody body, ResultChannel channel) override;
  void run() override;
  double end_time() const override { return end_time_; }
  transport::TransportCounters transport_counters() const override;

 private:
  struct Registration {
    ProcId id;
    ProcessBody body;
    ResultChannel channel;  ///< encode/decode may both be null
  };

  ClusterOptions options_;
  std::set<ProcId> ids_;
  std::vector<Registration> registrations_;
  std::shared_ptr<transport::Transport> transport_;  ///< built by run(), pre-fork
  double end_time_ = 0.0;
  bool ran_ = false;
};

}  // namespace ccf::runtime
