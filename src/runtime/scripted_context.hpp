// ScriptedContext: a single-process, manually driven ProcessContext.
//
// Useful for unit tests and for reproducing protocol scenarios at exact
// event timings (e.g. the paper's Figure 7/8 listings): sends are
// recorded, receives are fed from a queue, the clock advances only through
// compute()/copy(). Not thread-safe — it models one process in isolation.
#pragma once

#include <cstring>
#include <deque>
#include <vector>

#include "runtime/process_context.hpp"
#include "util/check.hpp"

namespace ccf::runtime {

class ScriptedContext final : public ProcessContext {
 public:
  explicit ScriptedContext(ProcId id = 0,
                           CopyCostModel cost = CopyCostModel::pentium4_preset())
      : id_(id), cost_(cost) {}

  ProcId id() const override { return id_; }

  void send(ProcId dst, Tag tag, Payload payload) override {
    Message m;
    m.src = id_;
    m.dst = dst;
    m.tag = tag;
    m.payload = payload ? std::move(payload) : transport::empty_payload();
    sent_.push_back(std::move(m));
  }

  Message recv(const MatchSpec& spec) override {
    auto m = try_recv(spec);
    CCF_REQUIRE(m.has_value(), "ScriptedContext::recv with no matching queued message");
    return std::move(*m);
  }

  std::optional<Message> try_recv(const MatchSpec& spec) override {
    for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
      if (spec.matches(*it)) {
        Message m = std::move(*it);
        inbox_.erase(it);
        return m;
      }
    }
    return std::nullopt;
  }

  bool probe(const MatchSpec& spec) override {
    for (const auto& m : inbox_) {
      if (spec.matches(m)) return true;
    }
    return false;
  }

  std::optional<Message> recv_until(const MatchSpec& spec, double deadline) override {
    auto m = try_recv(spec);
    if (!m) now_ = std::max(now_, deadline);
    return m;
  }

  double now() const override { return now_; }
  void compute(double seconds) override { now_ += seconds; }

  void copy(void* dst, const void* src, std::size_t bytes) override {
    std::memcpy(dst, src, bytes);
    now_ += cost_.cost_seconds(bytes);
  }

  void charge_copy_cost(std::size_t bytes) override { now_ += cost_.cost_seconds(bytes); }
  const CopyCostModel& copy_cost_model() const override { return cost_; }

  // --- script controls -------------------------------------------------
  /// Messages this process has sent, in order.
  const std::vector<Message>& sent() const { return sent_; }
  std::vector<Message>& sent() { return sent_; }

  /// All sent messages carrying `tag`, in send order.
  std::vector<Message> sent_with_tag(Tag tag) const {
    std::vector<Message> out;
    for (const auto& m : sent_) {
      if (m.tag == tag) out.push_back(m);
    }
    return out;
  }

  /// Queues a message for a future recv/try_recv.
  void push_inbox(Message m) { inbox_.push_back(std::move(m)); }

  void set_now(double t) { now_ = t; }

 private:
  ProcId id_;
  CopyCostModel cost_;
  double now_ = 0;
  std::vector<Message> sent_;
  std::deque<Message> inbox_;
};

}  // namespace ccf::runtime
