// Transport abstraction: the seam between the coupling protocol and the
// machinery that moves its messages.
//
// A Transport owns the fabric connecting one cluster's processes; an
// Endpoint is one process's handle on it. Every backend delivers into a
// per-process Mailbox (MPI-style tagged matching), so all receive paths —
// blocking, polling, deadline — are identical across backends and the
// protocol layer never knows which one it is running on:
//
//   * FabricTransport      in-memory lossless fabric (transport/fabric.hpp)
//   * FaultTransport       seeded chaos decorator over ANY inner transport
//                          (transport/fault_transport.hpp)
//   * RealTransport        SHM rings intra-node + epoll TCP inter-node
//                          (transport/real/real_transport.hpp)
//
// Backends are selected per cluster via TransportOptions at the
// runtime::ClusterOptions level; see docs/DEPLOY.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "transport/mailbox.hpp"
#include "transport/message.hpp"

namespace ccf::transport {

/// Structural counters aggregated across a transport's endpoints. These
/// (not wall-clock numbers) are what the bench suite gates on.
struct TransportCounters {
  std::uint64_t frames_sent = 0;      ///< messages handed to the backend
  std::uint64_t frames_received = 0;  ///< messages delivered into mailboxes
  std::uint64_t bytes_framed = 0;     ///< wire bytes incl. frame headers

  // SHM ring path.
  std::uint64_t shm_frames = 0;               ///< frames that rode a ring
  std::uint64_t shm_zero_copy_deliveries = 0; ///< payloads aliasing ring memory
  std::uint64_t shm_zero_copy_bytes = 0;      ///< payload bytes never copied out
  std::uint64_t shm_inline_copies = 0;        ///< small payloads copied out
  std::uint64_t shm_inline_bytes = 0;
  std::uint64_t shm_producer_stalls = 0;      ///< sends that waited on a full ring
  std::uint64_t shm_doorbell_writes = 0;      ///< eventfd writes from the produce
                                              ///< path (idle-edge only; a burst
                                              ///< into an awake consumer writes 0)

  // TCP path.
  std::uint64_t tcp_frames = 0;
  std::uint64_t tcp_bytes = 0;          ///< wire bytes over sockets
  std::uint64_t tcp_read_syscalls = 0;
  std::uint64_t tcp_write_syscalls = 0;
  std::uint64_t tcp_connections = 0;    ///< handshakes completed (both roles)
  std::uint64_t tcp_rx_blocks = 0;            ///< receive blocks allocated
  std::uint64_t tcp_zero_copy_deliveries = 0; ///< payloads aliasing a receive block
  std::uint64_t tcp_zero_copy_bytes = 0;      ///< payload bytes never copied out
  std::uint64_t decode_errors = 0;      ///< malformed frames/handshakes rejected

  // Event loop.
  std::uint64_t epoll_waits = 0;
  std::uint64_t doorbells = 0;  ///< eventfd wakeups written (all wake paths)

  // Write-queue / ring backpressure edges (BufferPressure integration).
  std::uint64_t backpressure_raises = 0;
  std::uint64_t backpressure_clears = 0;
};

/// One process's handle on a Transport. send() is non-blocking and ordered
/// per (sender, receiver); inbox() is where the backend delivers. An
/// endpoint is attached once and used by that process only.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  virtual ProcId id() const = 0;

  /// Non-blocking, ordered, reliable point-to-point send. `m.src` must be
  /// this endpoint's id; `m.seq` is stamped by the transport.
  virtual void send(Message m) = 0;

  /// The local delivery queue; all receive variants go through it.
  virtual Mailbox& inbox() = 0;

  /// Advisory: true while the backend's egress is congested (TCP write
  /// queue above its high watermark, or an SHM ring persistently full).
  /// The coupling runtime folds this into the collective BufferPressure
  /// protocol (docs/PROTOCOL.md).
  virtual bool under_pressure() const { return false; }
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Returns the endpoint for member `id`. Call at most once per id, from
  /// the process/thread that will use it.
  virtual std::shared_ptr<Endpoint> attach(ProcId id) = 0;

  /// Closes every local endpoint's mailbox (wakes blocked receivers) and
  /// tears down backend resources reachable from this process.
  virtual void shutdown() = 0;

  virtual TransportCounters counters() const = 0;
};

enum class TransportKind {
  InMemory,  ///< lossless in-process fabric (the default; no syscalls)
  Real,      ///< SHM rings intra-node + length-prefixed epoll TCP inter-node
};

/// Backend selection and tuning, carried inside runtime::ClusterOptions.
/// The defaults select the in-memory fabric and change nothing about
/// existing behavior.
struct TransportOptions {
  TransportKind kind = TransportKind::InMemory;

  /// Per-directed-pair SHM ring capacity. A frame (header + payload) must
  /// fit in one ring; oversized sends throw with a message naming this
  /// knob.
  std::size_t shm_ring_bytes = 1u << 20;

  /// Payloads at or below this size are copied out of the ring on
  /// delivery (releasing the slot immediately); larger payloads alias the
  /// ring memory zero-copy until the last PayloadView dies.
  std::size_t shm_inline_bytes = 512;

  /// Hard cap on a decoded frame's payload (hostile-input guard on the
  /// TCP path; an SHM frame is already bounded by the ring capacity).
  std::size_t max_frame_payload_bytes = 256u << 20;

  /// TCP receive block size: each read() lands in a refcounted block this
  /// large (grown to fit a partial frame's remainder), and every complete
  /// frame inside one block is parsed from a single syscall. Payloads
  /// above shm_inline_bytes are delivered as zero-copy views aliasing the
  /// block. Tests shrink this to force frames to straddle block edges.
  std::size_t tcp_recv_block_bytes = 256u << 10;

  /// TCP write-queue watermarks driving Endpoint::under_pressure().
  std::size_t tcp_writeq_high_bytes = 4u << 20;
  std::size_t tcp_writeq_low_bytes = 1u << 20;

  /// Node id per process; members missing from the map are node 0.
  /// Same-node pairs communicate over SHM rings, cross-node pairs over
  /// TCP. (All on one node — the default — means no sockets at all.)
  std::unordered_map<ProcId, int> node_of;

  /// Handshake identity per process ("program/rank"); defaults to
  /// "proc/<id>". The TCP accept path verifies the peer's announced
  /// identity against this map.
  std::unordered_map<ProcId, std::string> identity;

  /// Rendezvous file listing `<proc> <host> <port>` for every TCP
  /// listener; written by the transport host, read at attach. Empty
  /// selects a unique temp path.
  std::string rendezvous_path;

  /// Listen/connect host for the TCP path.
  std::string host = "127.0.0.1";

  int node(ProcId id) const {
    auto it = node_of.find(id);
    return it == node_of.end() ? 0 : it->second;
  }

  std::string identity_of(ProcId id) const {
    auto it = identity.find(id);
    return it == identity.end() ? "proc/" + std::to_string(id) : it->second;
  }
};

/// Builds the backend selected by `options.kind` for `members`.
/// A RealTransport must be constructed *before* the member processes fork
/// or spawn (it maps the shared rings and binds the TCP listeners);
/// attach() is then called by each member wherever it runs.
std::shared_ptr<Transport> make_transport(const TransportOptions& options,
                                          const std::vector<ProcId>& members);

}  // namespace ccf::transport
