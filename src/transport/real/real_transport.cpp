#include "transport/real/real_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <sstream>
#include <thread>
#include <tuple>

#include "transport/fabric.hpp"
#include "transport/real/wire.hpp"

namespace ccf::transport::real {

namespace {

inline std::size_t align64(std::size_t n) { return (n + 63u) & ~std::size_t{63}; }

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CCF_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

void write_doorbell(int fd, SharedCounters* ctr) {
  const std::uint64_t one = 1;
  // The eventfd counter saturates rather than blocks; EAGAIN means the
  // consumer already has a pending wakeup, which is all we need.
  [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof one);
  ctr->doorbells.fetch_add(1, std::memory_order_relaxed);
}

/// Keeps a zero-copy ring record (and everything its bytes live in) alive
/// until the last PayloadView into it dies, then releases the slot.
struct RecordHold {
  std::shared_ptr<RealTransport> mapping_keepalive;  ///< may be null (stack-owned)
  std::shared_ptr<RingConsumer> consumer;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  ~RecordHold() { consumer->release(begin, end); }
};

}  // namespace

// ---------------------------------------------------------------------------
// RealEndpoint

class RealEndpoint final : public Endpoint {
 public:
  RealEndpoint(RealTransport& host, ProcId id);
  ~RealEndpoint() override;

  RealEndpoint(const RealEndpoint&) = delete;
  RealEndpoint& operator=(const RealEndpoint&) = delete;

  /// Connects initiator-side sockets and spawns the event loop. Separate
  /// from the constructor so the host can record the endpoint first.
  void start();

  ProcId id() const override { return id_; }
  Mailbox& inbox() override { return mailbox_; }
  bool under_pressure() const override {
    return pressure_.load(std::memory_order_acquire);
  }
  void send(Message m) override;

  /// Wakes and stops the event loop and closes the mailbox; does not join
  /// (the destructor does). Safe to call from any thread, repeatedly.
  void request_stop();

 private:
  struct Conn {
    int fd = -1;
    ProcId peer = kAnyProc;
    BlockDecoder decoder;
    BlockDecoder::Stats synced;   ///< decoder stats already added to SharedCounters
    bool handshake_done = false;  ///< acceptor: HELLO seen; initiator: WELCOME seen
    bool initiator = false;
    std::vector<std::byte> hsbuf;  ///< handshake bytes accumulated so far
    bool dead = false;

    std::mutex write_mutex;
    SendQueue writeq;
    bool epollout_armed = false;
    bool counted_pressure = false;

    Conn(std::size_t max_payload, std::size_t block_bytes, std::size_t inline_bytes)
        : decoder(max_payload, block_bytes, inline_bytes) {}
  };

  /// A frame addressed to a peer whose connection has not completed its
  /// handshake yet; moved onto the SendQueue in order when it does.
  struct Parked {
    FrameHeader header;
    Payload payload;
  };

  /// Contiguous run of drained inline ring records awaiting one merged
  /// release() — one mutex acquisition and tail store per burst instead
  /// of per record.
  struct ReleaseBatch {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    bool active = false;
  };

  void io_loop();
  bool rings_have_data() const;
  void drain_rings();
  void deliver_record(std::size_t producer_index, const RingConsumer::Record& rec,
                      ReleaseBatch& batch);
  void handle_readable(const std::shared_ptr<Conn>& c);
  bool handle_handshake_bytes(const std::shared_ptr<Conn>& c, const std::byte* data,
                              std::size_t n);
  void complete_handshake(const std::shared_ptr<Conn>& c, const Handshake& hs);
  void deliver_frames(const std::shared_ptr<Conn>& c);
  void flush_writeq(const std::shared_ptr<Conn>& c);
  void accept_pending();
  void close_conn(const std::shared_ptr<Conn>& c, bool count_decode_error);
  void enqueue_frame(const std::shared_ptr<Conn>& c, const FrameHeader& h, Payload payload);
  void enqueue_raw(const std::shared_ptr<Conn>& c, std::vector<std::byte> raw);
  void flush_and_arm(Conn& c);
  void send_shm(std::size_t peer_index, const FrameHeader& h, const Payload& payload);
  void send_tcp(std::size_t peer_index, const FrameHeader& h, const Payload& payload);
  void ring_doorbell(std::size_t member_index);
  std::shared_ptr<Conn> connect_to(ProcId peer);
  void register_conn_locked(const std::shared_ptr<Conn>& c);
  void writeq_watermarks(Conn& c);
  void set_ring_stalled(bool stalled);
  void recompute_pressure();

  RealTransport& host_;
  const ProcId id_;
  const std::size_t my_index_;
  SharedCounters* ctr_;
  Mailbox mailbox_;
  std::atomic<std::uint64_t> next_seq_{0};

  // SHM: outbound rings (this endpoint is the single producer) and
  // inbound ring consumers, both indexed by peer member index.
  std::vector<ShmRing> ring_to_;
  std::vector<std::shared_ptr<RingConsumer>> ring_from_;

  int epoll_fd_ = -1;
  int doorbell_fd_ = -1;  ///< owned by the host; this endpoint reads it
  int listen_fd_ = -1;    ///< owned by the host

  std::mutex conns_mutex_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  ///< by fd
  std::vector<std::shared_ptr<Conn>> peer_conn_;          ///< by member index
  std::vector<std::deque<Parked>> pending_out_;           ///< pre-handshake sends

  std::thread io_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> pressure_{false};
  std::mutex pressure_mutex_;
  std::size_t pressured_conns_ = 0;
  bool ring_stalled_ = false;
};

RealEndpoint::RealEndpoint(RealTransport& host, ProcId id)
    : host_(host),
      id_(id),
      my_index_(host.index_of(id)),
      ctr_(host.shared_),
      ring_to_(host.members_.size()),
      ring_from_(host.members_.size()),
      peer_conn_(host.members_.size()),
      pending_out_(host.members_.size()) {
  const std::size_t n = host_.members_.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (j == my_index_) continue;
    if (ShmRing out = host_.ring(my_index_, j)) ring_to_[j] = out;
    if (ShmRing in = host_.ring(j, my_index_))
      ring_from_[j] = std::make_shared<RingConsumer>(in);
  }
  doorbell_fd_ = host_.doorbell_[my_index_];
  listen_fd_ = host_.listen_fd_[my_index_];

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  CCF_CHECK(epoll_fd_ >= 0, "epoll_create1 failed: " << std::strerror(errno));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = doorbell_fd_;
  CCF_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, doorbell_fd_, &ev) == 0,
            "epoll_ctl(doorbell) failed: " << std::strerror(errno));
  if (listen_fd_ >= 0) {
    ev.data.fd = listen_fd_;
    CCF_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
              "epoll_ctl(listener) failed: " << std::strerror(errno));
  }
}

void RealEndpoint::start() {
  // The lower proc id initiates each cross-node connection; the listener
  // was bound before any member started, so connect succeeds even if the
  // peer has not attached yet (the kernel backlog holds it).
  const std::size_t n = host_.members_.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (j == my_index_) continue;
    const ProcId peer = host_.members_[j];
    if (host_.same_node(id_, peer) || id_ >= peer) continue;
    auto c = connect_to(peer);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    register_conn_locked(c);
    peer_conn_[j] = c;
  }
  io_thread_ = std::thread([this] { io_loop(); });
}

RealEndpoint::~RealEndpoint() {
  // Flush pending TCP writes before tearing down: a peer may still need
  // frames this process sent just before finishing. Bounded wait; the
  // event loop drains the queues via EPOLLOUT.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    if (stop_.load(std::memory_order_acquire) || host_.shared_->closed.load() != 0) break;
    std::size_t queued = 0;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      for (auto& [fd, c] : conns_) {
        std::lock_guard<std::mutex> wlock(c->write_mutex);
        if (!c->dead) queued += c->writeq.bytes();
      }
    }
    if (queued == 0 || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  request_stop();
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& [fd, c] : conns_)
      if (c->fd >= 0) ::close(c->fd);
    conns_.clear();
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void RealEndpoint::request_stop() {
  stop_.store(true, std::memory_order_release);
  mailbox_.close();
  write_doorbell(doorbell_fd_, ctr_);
}

// -- Send paths -------------------------------------------------------------

void RealEndpoint::send(Message m) {
  CCF_REQUIRE(m.src == id_, "endpoint " << id_ << " sending with src " << m.src);
  const std::size_t peer_index = host_.index_of(m.dst);
  m.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);

  const FrameHeader h = make_frame_header(m);
  ctr_->frames_sent.fetch_add(1, std::memory_order_relaxed);
  ctr_->bytes_framed.fetch_add(frame_bytes(m.payload.size()), std::memory_order_relaxed);

  if (m.dst == id_) {
    // Self-sends short-circuit the fabric entirely (there is no ring to
    // self); the mailbox gives the same ordered delivery.
    ctr_->frames_received.fetch_add(1, std::memory_order_relaxed);
    mailbox_.deliver(std::move(m));
    return;
  }
  if (ring_to_[peer_index]) {
    send_shm(peer_index, h, m.payload);
  } else {
    send_tcp(peer_index, h, m.payload);
  }
}

void RealEndpoint::ring_doorbell(std::size_t member_index) {
  // Coalesced doorbell: only the producer that wins the SLEEPING -> AWAKE
  // edge pays the eventfd write; every further record in the burst sees
  // the consumer already awake (it re-arms SLEEPING just before its next
  // epoll_wait, after re-checking the rings). The fence orders the ring's
  // head publish before the gate load — without it the consumer could
  // declare itself asleep between our publish and a stale AWAKE read.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::atomic<std::uint32_t>* door = host_.door_state(member_index);
  if (door->load(std::memory_order_seq_cst) == kDoorSleeping &&
      door->exchange(kDoorAwake, std::memory_order_seq_cst) == kDoorSleeping) {
    write_doorbell(host_.doorbell_[member_index], ctr_);
    ctr_->shm_doorbell_writes.fetch_add(1, std::memory_order_relaxed);
  }
}

void RealEndpoint::send_shm(std::size_t peer_index, const FrameHeader& h,
                            const Payload& payload) {
  ShmRing& ring = ring_to_[peer_index];
  bool stalled = false;
  while (!ring.try_push2(&h, sizeof h, payload.data(), payload.size())) {
    if (!stalled) {
      stalled = true;
      ctr_->shm_producer_stalls.fetch_add(1, std::memory_order_relaxed);
      set_ring_stalled(true);
    }
    if (host_.shared_->closed.load(std::memory_order_acquire) != 0 ||
        stop_.load(std::memory_order_acquire))
      throw MailboxClosed();
    // Make sure the consumer is awake to free space, then back off.
    ring_doorbell(peer_index);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  if (stalled) set_ring_stalled(false);
  ctr_->shm_frames.fetch_add(1, std::memory_order_relaxed);
  ring_doorbell(peer_index);
}

void RealEndpoint::send_tcp(std::size_t peer_index, const FrameHeader& h,
                            const Payload& payload) {
  ctr_->tcp_frames.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<Conn> c;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    c = peer_conn_[peer_index];
    if (c == nullptr) {
      // Acceptor side, peer not yet connected: park the frame (header by
      // value, payload by view — no flattening copy); the handshake
      // completion moves it onto the connection in order.
      pending_out_[peer_index].push_back(Parked{h, payload});
      return;
    }
  }
  enqueue_frame(c, h, payload);
}

void RealEndpoint::enqueue_frame(const std::shared_ptr<Conn>& c, const FrameHeader& h,
                                 Payload payload) {
  std::lock_guard<std::mutex> lock(c->write_mutex);
  if (c->dead) return;  // peer gone; protocol-level timeouts handle the loss
  ctr_->tcp_bytes.fetch_add(kFrameHeaderBytes + payload.size(), std::memory_order_relaxed);
  c->writeq.push_frame(h, std::move(payload));
  flush_and_arm(*c);
}

void RealEndpoint::enqueue_raw(const std::shared_ptr<Conn>& c, std::vector<std::byte> raw) {
  std::lock_guard<std::mutex> lock(c->write_mutex);
  if (c->dead) return;
  ctr_->tcp_bytes.fetch_add(raw.size(), std::memory_order_relaxed);
  c->writeq.push_raw(std::move(raw));
  flush_and_arm(*c);
}

void RealEndpoint::flush_and_arm(Conn& c) {
  // Called with c.write_mutex held. One sendmsg drains the whole queue —
  // iovec chains over every queued header and payload view — and a
  // partial write simply leaves the queue resumable mid-iovec.
  constexpr std::size_t kMaxIov = 64;  // well under IOV_MAX; loops if deeper
  while (!c.writeq.empty()) {
    iovec iov[kMaxIov];
    const std::size_t count = c.writeq.gather(iov, kMaxIov);
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    const ssize_t n = ::sendmsg(c.fd, &msg, MSG_NOSIGNAL);
    ctr_->tcp_write_syscalls.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      c.dead = true;  // reaped on the next readable/EOF event
      return;
    }
    c.writeq.consume(static_cast<std::size_t>(n));
  }
  const bool want_epollout = !c.writeq.empty();
  if (want_epollout != c.epollout_armed) {
    c.epollout_armed = want_epollout;
    epoll_event ev{};
    ev.events = EPOLLIN | (want_epollout ? EPOLLOUT : 0u);
    ev.data.fd = c.fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  }
  writeq_watermarks(c);
}

// -- Backpressure -----------------------------------------------------------

void RealEndpoint::writeq_watermarks(Conn& c) {
  // Called with c.write_mutex held. Hysteresis: raise above high, clear
  // below low, so pressure does not flap at the boundary.
  if (!c.counted_pressure && c.writeq.bytes() > host_.options_.tcp_writeq_high_bytes) {
    c.counted_pressure = true;
    std::lock_guard<std::mutex> lock(pressure_mutex_);
    ++pressured_conns_;
    recompute_pressure();
  } else if (c.counted_pressure && c.writeq.bytes() < host_.options_.tcp_writeq_low_bytes) {
    c.counted_pressure = false;
    std::lock_guard<std::mutex> lock(pressure_mutex_);
    --pressured_conns_;
    recompute_pressure();
  }
}

void RealEndpoint::set_ring_stalled(bool stalled) {
  std::lock_guard<std::mutex> lock(pressure_mutex_);
  if (ring_stalled_ == stalled) return;
  ring_stalled_ = stalled;
  recompute_pressure();
}

void RealEndpoint::recompute_pressure() {
  // Called with pressure_mutex_ held.
  const bool now = pressured_conns_ > 0 || ring_stalled_;
  if (now == pressure_.load(std::memory_order_relaxed)) return;
  pressure_.store(now, std::memory_order_release);
  auto& edge = now ? ctr_->backpressure_raises : ctr_->backpressure_clears;
  edge.fetch_add(1, std::memory_order_relaxed);
}

// -- Connection setup -------------------------------------------------------

std::shared_ptr<RealEndpoint::Conn> RealEndpoint::connect_to(ProcId peer) {
  auto [host, port] = host_.peer_address(peer);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  CCF_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  CCF_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
            "bad transport host address '" << host << "'");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    CCF_CHECK(false, "connect to proc " << peer << " at " << host << ":" << port
                                        << " failed: " << std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  Handshake hello;
  hello.magic = kHelloMagic;
  hello.src = id_;
  hello.dst = peer;
  hello.identity = host_.options_.identity_of(id_);
  const std::vector<std::byte> wire = encode_handshake(hello);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    ctr_->tcp_write_syscalls.fetch_add(1, std::memory_order_relaxed);
    if (n < 0 && errno == EINTR) continue;
    CCF_CHECK(n > 0, "handshake send to proc " << peer
                                               << " failed: " << std::strerror(errno));
    sent += static_cast<std::size_t>(n);
  }
  ctr_->tcp_bytes.fetch_add(wire.size(), std::memory_order_relaxed);
  set_nonblocking(fd);

  auto c = std::make_shared<Conn>(host_.options_.max_frame_payload_bytes,
                                  host_.options_.tcp_recv_block_bytes,
                                  host_.options_.shm_inline_bytes);
  c->fd = fd;
  c->peer = peer;
  c->initiator = true;
  return c;
}

void RealEndpoint::register_conn_locked(const std::shared_ptr<Conn>& c) {
  conns_.emplace(c->fd, c);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = c->fd;
  CCF_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c->fd, &ev) == 0,
            "epoll_ctl(conn) failed: " << std::strerror(errno));
}

void RealEndpoint::accept_pending() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays armed
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto c = std::make_shared<Conn>(host_.options_.max_frame_payload_bytes,
                                    host_.options_.tcp_recv_block_bytes,
                                    host_.options_.shm_inline_bytes);
    c->fd = fd;  // peer unknown until its HELLO arrives
    std::lock_guard<std::mutex> lock(conns_mutex_);
    register_conn_locked(c);
  }
}

void RealEndpoint::complete_handshake(const std::shared_ptr<Conn>& c, const Handshake& hs) {
  if (c->initiator) {
    // WELCOME from the peer we connected to.
    if (hs.src != c->peer || hs.dst != id_)
      throw FramingError("WELCOME from unexpected peer");
    const std::string expect = host_.options_.identity_of(hs.src);
    if (hs.identity != expect)
      throw FramingError("WELCOME identity mismatch: got '" + hs.identity +
                         "', expected '" + expect + "'");
    c->handshake_done = true;
    ctr_->tcp_connections.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // HELLO on an accepted connection: learn and verify who is calling.
  if (hs.dst != id_) throw FramingError("HELLO addressed to another proc");
  if (host_.member_index_.find(hs.src) == host_.member_index_.end())
    throw FramingError("HELLO from unknown proc " + std::to_string(hs.src));
  if (host_.same_node(hs.src, id_))
    throw FramingError("HELLO from same-node proc " + std::to_string(hs.src) +
                       " (should use the SHM ring)");
  const std::string expect = host_.options_.identity_of(hs.src);
  if (hs.identity != expect)
    throw FramingError("HELLO identity mismatch: got '" + hs.identity + "', expected '" +
                       expect + "'");
  const std::size_t peer_index = host_.index_of(hs.src);
  std::deque<Parked> parked;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    if (peer_conn_[peer_index] != nullptr)
      throw FramingError("duplicate connection from proc " + std::to_string(hs.src));
    peer_conn_[peer_index] = c;
    parked.swap(pending_out_[peer_index]);
  }
  c->peer = hs.src;
  c->handshake_done = true;
  ctr_->tcp_connections.fetch_add(1, std::memory_order_relaxed);

  Handshake welcome;
  welcome.magic = kWelcomeMagic;
  welcome.src = id_;
  welcome.dst = hs.src;
  welcome.identity = host_.options_.identity_of(id_);
  std::vector<std::byte> wire = encode_handshake(welcome);
  // Queue the WELCOME and every parked frame under one lock, then flush
  // once: the whole backlog leaves in a single vectored syscall.
  {
    std::lock_guard<std::mutex> lock(c->write_mutex);
    if (c->dead) return;
    ctr_->tcp_bytes.fetch_add(wire.size(), std::memory_order_relaxed);
    c->writeq.push_raw(std::move(wire));
    for (auto& p : parked) {
      ctr_->tcp_bytes.fetch_add(kFrameHeaderBytes + p.payload.size(),
                                std::memory_order_relaxed);
      c->writeq.push_frame(p.header, std::move(p.payload));
    }
    flush_and_arm(*c);
  }
}

void RealEndpoint::close_conn(const std::shared_ptr<Conn>& c, bool count_decode_error) {
  if (count_decode_error) ctr_->decode_errors.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> wlock(c->write_mutex);
    if (c->dead) return;
    c->dead = true;
    if (c->counted_pressure) {
      c->counted_pressure = false;
      std::lock_guard<std::mutex> lock(pressure_mutex_);
      --pressured_conns_;
      recompute_pressure();
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
  std::lock_guard<std::mutex> lock(conns_mutex_);
  conns_.erase(c->fd);
  ::close(c->fd);
  c->fd = -1;
  if (c->peer != kAnyProc) {
    const std::size_t peer_index = host_.index_of(c->peer);
    if (peer_conn_[peer_index] == c) peer_conn_[peer_index] = nullptr;
  }
}

// -- Event loop -------------------------------------------------------------

void RealEndpoint::io_loop() {
  epoll_event events[64];
  std::atomic<std::uint32_t>* door = host_.door_state(my_index_);
  for (;;) {
    if (stop_.load(std::memory_order_acquire) ||
        host_.shared_->closed.load(std::memory_order_acquire) != 0)
      break;
    // Doorbell gate: declare SLEEPING, then re-check the rings. A record
    // published before the store is caught by the re-check (poll with
    // timeout 0); one published after it sees SLEEPING and rings the
    // eventfd. Either way no wakeup is lost, and a burst into an awake
    // loop costs its producer zero doorbell syscalls. The 100ms timeout
    // stays as a belt-and-braces fallback.
    door->store(kDoorSleeping, std::memory_order_seq_cst);
    int timeout = 100;
    if (rings_have_data()) {
      door->store(kDoorAwake, std::memory_order_seq_cst);
      timeout = 0;
    }
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout);
    door->store(kDoorAwake, std::memory_order_seq_cst);
    ctr_->epoll_waits.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == doorbell_fd_) {
        std::uint64_t count = 0;
        while (::read(doorbell_fd_, &count, sizeof count) > 0) {}
        continue;  // rings are drained below regardless
      }
      if (fd == listen_fd_) {
        accept_pending();
        continue;
      }
      std::shared_ptr<Conn> c;
      {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) c = it->second;
      }
      if (c == nullptr) continue;
      if (events[i].events & EPOLLOUT) flush_writeq(c);
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) handle_readable(c);
    }
    try {
      drain_rings();
    } catch (const util::ProtocolViolation&) {
      // A torn ring record means a peer died mid-write; there is nothing
      // trustworthy left on that ring. Fail this endpoint loudly.
      ctr_->decode_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  mailbox_.close();
}

bool RealEndpoint::rings_have_data() const {
  // Ordered after the SLEEPING store by its seq_cst; pairs with the
  // producer's fence in ring_doorbell().
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (const auto& consumer : ring_from_)
    if (consumer != nullptr && consumer->has_pending()) return true;
  return false;
}

void RealEndpoint::drain_rings() {
  for (std::size_t j = 0; j < ring_from_.size(); ++j) {
    const auto& consumer = ring_from_[j];
    if (consumer == nullptr) continue;
    // Inline records drained back-to-back fold into one release interval;
    // the merged release at the end is the drain's only tail store.
    ReleaseBatch batch;
    while (auto rec = consumer->next()) deliver_record(j, *rec, batch);
    if (batch.active) consumer->release(batch.begin, batch.end);
  }
}

void RealEndpoint::deliver_record(std::size_t producer_index,
                                  const RingConsumer::Record& rec, ReleaseBatch& batch) {
  const auto& consumer = ring_from_[producer_index];
  CCF_CHECK(rec.size >= kFrameHeaderBytes, "SHM record smaller than a frame header");
  const FrameHeader h = read_frame_header(rec.data);
  validate_frame_header(h, consumer->ring().capacity());
  CCF_CHECK(rec.size == frame_bytes(static_cast<std::size_t>(h.payload_bytes)),
            "SHM record size disagrees with its frame header");

  Message m;
  m.src = h.src;
  m.dst = h.dst;
  m.tag = h.tag;
  m.seq = h.seq;
  const std::byte* payload = rec.data + kFrameHeaderBytes;
  const std::size_t payload_bytes = static_cast<std::size_t>(h.payload_bytes);
  if (payload_bytes <= host_.options_.shm_inline_bytes) {
    // Small control frames: copy out and release within this drain so
    // long-held messages never pin ring space. Contiguous inline records
    // extend the batch; a gap (a zero-copy record in between) flushes it.
    m.payload = make_payload(std::vector<std::byte>(payload, payload + payload_bytes));
    if (batch.active && batch.end == rec.begin) {
      batch.end = rec.end;
    } else {
      if (batch.active) consumer->release(batch.begin, batch.end);
      batch.begin = rec.begin;
      batch.end = rec.end;
      batch.active = true;
    }
    ctr_->shm_inline_copies.fetch_add(1, std::memory_order_relaxed);
    ctr_->shm_inline_bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
  } else {
    // Zero copy: the payload aliases the ring pages; the slot is released
    // when the last view (however far it was forwarded) dies.
    auto hold = std::make_shared<RecordHold>();
    hold->mapping_keepalive = host_.weak_from_this().lock();
    hold->consumer = consumer;
    hold->begin = rec.begin;
    hold->end = rec.end;
    m.payload = PayloadView(std::shared_ptr<const void>(hold, payload), payload,
                            payload_bytes);
    ctr_->shm_zero_copy_deliveries.fetch_add(1, std::memory_order_relaxed);
    ctr_->shm_zero_copy_bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
  ctr_->frames_received.fetch_add(1, std::memory_order_relaxed);
  mailbox_.deliver(std::move(m));
}

void RealEndpoint::handle_readable(const std::shared_ptr<Conn>& c) {
  for (;;) {
    try {
      std::byte* dst;
      std::size_t space;
      std::byte prebuf[4096];
      if (!c->handshake_done) {
        // Pre-handshake bytes go through a bounded stack buffer: nothing
        // on this connection is trusted until the identity checks out.
        dst = prebuf;
        space = sizeof prebuf;
      } else {
        // Batched receive: the read lands directly in the decoder's
        // refcounted block, sized to finish the current partial frame in
        // one syscall; every complete frame in the block is parsed below
        // without another read.
        std::tie(dst, space) = c->decoder.recv_buffer();
      }
      const ssize_t n = ::recv(c->fd, dst, space, 0);
      ctr_->tcp_read_syscalls.fetch_add(1, std::memory_order_relaxed);
      if (n > 0) {
        ctr_->tcp_bytes.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
        if (c->handshake_done) {
          c->decoder.bytes_received(static_cast<std::size_t>(n));
        } else if (!handle_handshake_bytes(c, prebuf, static_cast<std::size_t>(n))) {
          continue;  // handshake still incomplete; read more
        }
        deliver_frames(c);
        continue;
      }
      if (n == 0) {
        // EOF. Mid-frame (or mid-handshake) means the stream was truncated.
        const bool truncated = c->decoder.pending() != 0 || !c->handshake_done;
        close_conn(c, truncated);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close_conn(c, /*count_decode_error=*/false);
      return;
    } catch (const FramingError&) {
      // Hostile or corrupt stream: after one bad byte there is no
      // trustworthy framing left, so drop the connection.
      close_conn(c, /*count_decode_error=*/true);
      return;
    }
  }
}

/// Accumulates handshake bytes; returns true once the handshake completed
/// (leftover coalesced frame bytes are handed to the frame decoder).
bool RealEndpoint::handle_handshake_bytes(const std::shared_ptr<Conn>& c,
                                          const std::byte* data, std::size_t n) {
  c->hsbuf.insert(c->hsbuf.end(), data, data + n);
  Handshake hs;
  std::size_t consumed = 0;
  if (!decode_handshake(c->hsbuf.data(), c->hsbuf.size(),
                        c->initiator ? kWelcomeMagic : kHelloMagic, hs, consumed)) {
    // A maximal handshake fits in prelude + identity cap; anything that
    // still fails to decode past that point is hostile, not incomplete.
    // (The buffer may legitimately hold far more than a handshake: the
    // peer's first frames often coalesce into the same recv chunk.)
    if (c->hsbuf.size() >= sizeof(HandshakePrelude) + kMaxIdentityBytes)
      throw FramingError("handshake rejected: oversized");
    return false;  // need more bytes
  }
  complete_handshake(c, hs);
  if (consumed < c->hsbuf.size())
    c->decoder.feed(c->hsbuf.data() + consumed, c->hsbuf.size() - consumed);
  c->hsbuf.clear();
  c->hsbuf.shrink_to_fit();
  return true;
}

void RealEndpoint::deliver_frames(const std::shared_ptr<Conn>& c) {
  Message m;
  while (c->decoder.next(m)) {
    if (m.dst != id_ || m.src != c->peer)
      throw FramingError("frame addressed to proc " + std::to_string(m.dst) +
                         " from proc " + std::to_string(m.src) +
                         " on the wrong connection");
    ctr_->frames_received.fetch_add(1, std::memory_order_relaxed);
    mailbox_.deliver(std::move(m));
  }
  // Fold the decoder's block/zero-copy accounting into the shared
  // counters (delta since the last sync; stats only ever grow).
  const BlockDecoder::Stats& s = c->decoder.stats();
  ctr_->tcp_rx_blocks.fetch_add(s.blocks_allocated - c->synced.blocks_allocated,
                                std::memory_order_relaxed);
  ctr_->tcp_zero_copy_deliveries.fetch_add(
      s.zero_copy_deliveries - c->synced.zero_copy_deliveries, std::memory_order_relaxed);
  ctr_->tcp_zero_copy_bytes.fetch_add(s.zero_copy_bytes - c->synced.zero_copy_bytes,
                                      std::memory_order_relaxed);
  c->synced = s;
}

void RealEndpoint::flush_writeq(const std::shared_ptr<Conn>& c) {
  std::lock_guard<std::mutex> lock(c->write_mutex);
  if (c->dead) return;
  flush_and_arm(*c);
}

// ---------------------------------------------------------------------------
// RealTransport

RealTransport::RealTransport(TransportOptions options, std::vector<ProcId> members)
    : options_(std::move(options)), members_(std::move(members)) {
  CCF_REQUIRE(!members_.empty(), "real transport with no members");
  CCF_REQUIRE(options_.shm_ring_bytes >= 4096 && options_.shm_ring_bytes % 8 == 0,
              "shm_ring_bytes must be a multiple of 8 and >= 4096, got "
                  << options_.shm_ring_bytes);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const bool inserted = member_index_.emplace(members_[i], i).second;
    CCF_REQUIRE(inserted, "duplicate transport member " << members_[i]);
  }

  // Shared mapping: counters, the per-member doorbell gates, then one
  // ring per directed same-node pair.
  const std::size_t n = members_.size();
  const std::size_t ring_slot = align64(ShmRing::bytes_required(options_.shm_ring_bytes));
  ring_offset_.assign(n * n, SIZE_MAX);
  const std::size_t door_offset = align64(sizeof(SharedCounters));
  std::size_t bytes = align64(door_offset + n * sizeof(std::atomic<std::uint32_t>));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || !same_node(members_[i], members_[j])) continue;
      ring_offset_[i * n + j] = bytes;
      bytes += ring_slot;
    }
  }
  shm_bytes_ = bytes;
  shm_ = ::mmap(nullptr, shm_bytes_, PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  CCF_CHECK(shm_ != MAP_FAILED,
            "mmap of " << shm_bytes_ << " transport bytes failed: "
                       << std::strerror(errno));
  shared_ = new (shm_) SharedCounters();
  door_state_ = reinterpret_cast<std::atomic<std::uint32_t>*>(
      static_cast<std::byte*>(shm_) + door_offset);
  // Members start SLEEPING: a producer that races a not-yet-attached
  // consumer rings the eventfd, whose count survives until the first
  // epoll_wait.
  for (std::size_t i = 0; i < n; ++i)
    new (door_state_ + i) std::atomic<std::uint32_t>(kDoorSleeping);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (ring_offset_[i * n + j] != SIZE_MAX)
        ShmRing::create(static_cast<std::byte*>(shm_) + ring_offset_[i * n + j],
                        options_.shm_ring_bytes);

  // One doorbell per member; producers ring it, the member's loop sleeps
  // on it. Created before fork so both sides inherit the same fds.
  doorbell_.resize(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    doorbell_[i] = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    CCF_CHECK(doorbell_[i] >= 0, "eventfd failed: " << std::strerror(errno));
  }

  // TCP listeners for members with at least one cross-node peer, bound
  // before fork so connects never race the accept side coming up.
  listen_fd_.resize(n, -1);
  port_.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    bool remote = false;
    for (std::size_t j = 0; j < n && !remote; ++j)
      remote = i != j && !same_node(members_[i], members_[j]);
    if (!remote) continue;
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    CCF_CHECK(fd >= 0, "socket() failed: " << std::strerror(errno));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;  // ephemeral; the rendezvous file publishes it
    CCF_CHECK(::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) == 1,
              "bad transport host address '" << options_.host << "'");
    CCF_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
              "bind on " << options_.host << " failed: " << std::strerror(errno));
    CCF_CHECK(::listen(fd, 64) == 0, "listen failed: " << std::strerror(errno));
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    CCF_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
              "getsockname failed: " << std::strerror(errno));
    set_nonblocking(fd);
    listen_fd_[i] = fd;
    port_[i] = ntohs(bound.sin_port);
  }

  // Rendezvous file: `<proc> <host> <port>` per listener. Members resolve
  // peer addresses from it at attach, exactly as a distributed launch
  // would (here every process inherits the path pre-fork).
  bool any_listener = false;
  for (std::size_t i = 0; i < n; ++i) any_listener |= listen_fd_[i] >= 0;
  if (any_listener) {
    rendezvous_path_ = options_.rendezvous_path;
    if (rendezvous_path_.empty()) {
      char tmpl[] = "/tmp/ccf_rendezvous_XXXXXX";
      const int fd = ::mkstemp(tmpl);
      CCF_CHECK(fd >= 0, "mkstemp for rendezvous file failed: " << std::strerror(errno));
      ::close(fd);
      rendezvous_path_ = tmpl;
      owns_rendezvous_file_ = true;
    }
    std::ofstream out(rendezvous_path_, std::ios::trunc);
    CCF_CHECK(out.good(), "cannot write rendezvous file " << rendezvous_path_);
    out << "# ccf transport rendezvous: proc host port\n";
    for (std::size_t i = 0; i < n; ++i)
      if (listen_fd_[i] >= 0)
        out << members_[i] << ' ' << options_.host << ' ' << port_[i] << '\n';
  }
}

RealTransport::~RealTransport() {
  shutdown();
  for (int fd : doorbell_)
    if (fd >= 0) ::close(fd);
  for (int fd : listen_fd_)
    if (fd >= 0) ::close(fd);
  if (shm_ != nullptr) ::munmap(shm_, shm_bytes_);
  if (owns_rendezvous_file_) ::unlink(rendezvous_path_.c_str());
}

std::size_t RealTransport::index_of(ProcId id) const {
  auto it = member_index_.find(id);
  CCF_REQUIRE(it != member_index_.end(), "proc " << id << " is not a transport member");
  return it->second;
}

ShmRing RealTransport::ring(std::size_t producer_index, std::size_t consumer_index) const {
  const std::size_t off = ring_offset_[producer_index * members_.size() + consumer_index];
  if (off == SIZE_MAX) return ShmRing();
  return ShmRing::open(static_cast<std::byte*>(shm_) + off);
}

std::pair<std::string, std::uint16_t> RealTransport::peer_address(ProcId peer) const {
  // Prefer the rendezvous file — the same lookup a distributed launcher
  // performs — falling back to the inherited port table.
  if (!rendezvous_path_.empty()) {
    const auto map = load_rendezvous(rendezvous_path_);
    auto it = map.find(peer);
    if (it != map.end()) return it->second;
  }
  const std::size_t j = index_of(peer);
  CCF_CHECK(listen_fd_[j] >= 0, "proc " << peer << " has no TCP listener");
  return {options_.host, port_[j]};
}

std::shared_ptr<Endpoint> RealTransport::attach(ProcId id) {
  std::shared_ptr<RealEndpoint> ep;
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    CCF_REQUIRE(attached_.insert(id).second,
                "proc " << id << " attached twice in this process");
    ep = std::make_shared<RealEndpoint>(*this, id);
    local_endpoints_.push_back(ep);
  }
  ep->start();
  return ep;
}

void RealTransport::shutdown() {
  shared_->closed.store(1, std::memory_order_release);
  // Wake every member's event loop — including those in forked siblings —
  // so blocked receivers everywhere see their mailbox close.
  for (int fd : doorbell_)
    if (fd >= 0) write_doorbell(fd, shared_);
  std::vector<std::shared_ptr<RealEndpoint>> local;
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    for (auto& weak : local_endpoints_)
      if (auto ep = weak.lock()) local.push_back(std::move(ep));
  }
  for (auto& ep : local) ep->request_stop();
}

TransportCounters RealTransport::counters() const {
  TransportCounters c;
  const SharedCounters& s = *shared_;
  c.frames_sent = s.frames_sent.load();
  c.frames_received = s.frames_received.load();
  c.bytes_framed = s.bytes_framed.load();
  c.shm_frames = s.shm_frames.load();
  c.shm_zero_copy_deliveries = s.shm_zero_copy_deliveries.load();
  c.shm_zero_copy_bytes = s.shm_zero_copy_bytes.load();
  c.shm_inline_copies = s.shm_inline_copies.load();
  c.shm_inline_bytes = s.shm_inline_bytes.load();
  c.shm_producer_stalls = s.shm_producer_stalls.load();
  c.shm_doorbell_writes = s.shm_doorbell_writes.load();
  c.tcp_frames = s.tcp_frames.load();
  c.tcp_bytes = s.tcp_bytes.load();
  c.tcp_read_syscalls = s.tcp_read_syscalls.load();
  c.tcp_write_syscalls = s.tcp_write_syscalls.load();
  c.tcp_connections = s.tcp_connections.load();
  c.tcp_rx_blocks = s.tcp_rx_blocks.load();
  c.tcp_zero_copy_deliveries = s.tcp_zero_copy_deliveries.load();
  c.tcp_zero_copy_bytes = s.tcp_zero_copy_bytes.load();
  c.decode_errors = s.decode_errors.load();
  c.epoll_waits = s.epoll_waits.load();
  c.doorbells = s.doorbells.load();
  c.backpressure_raises = s.backpressure_raises.load();
  c.backpressure_clears = s.backpressure_clears.load();
  return c;
}

std::unordered_map<ProcId, std::pair<std::string, std::uint16_t>> load_rendezvous(
    const std::string& path) {
  std::unordered_map<ProcId, std::pair<std::string, std::uint16_t>> out;
  std::ifstream in(path);
  CCF_REQUIRE(in.good(), "cannot read rendezvous file " << path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    long long proc = 0;
    std::string host;
    int port = 0;
    CCF_REQUIRE(static_cast<bool>(fields >> proc >> host >> port) && port > 0 &&
                    port <= 65535,
                "malformed rendezvous line '" << line << "' in " << path);
    out[static_cast<ProcId>(proc)] = {host, static_cast<std::uint16_t>(port)};
  }
  return out;
}

}  // namespace ccf::transport::real

namespace ccf::transport {

std::shared_ptr<Transport> make_transport(const TransportOptions& options,
                                          const std::vector<ProcId>& members) {
  switch (options.kind) {
    case TransportKind::InMemory:
      return std::make_shared<FabricTransport>(members);
    case TransportKind::Real:
      return std::make_shared<real::RealTransport>(options, members);
  }
  CCF_CHECK(false, "unknown TransportKind");
}

}  // namespace ccf::transport
