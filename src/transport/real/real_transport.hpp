// Real deployment backend: SHM rings intra-node, epoll TCP inter-node.
//
// A RealTransport is constructed by the launching process BEFORE the
// member processes fork (runtime::ProcessCluster) or spawn their threads
// (thread-attached mode, used by tests and the calibration bench). The
// constructor allocates every shared resource up front:
//
//   * one MAP_SHARED|MAP_ANONYMOUS region holding the aggregate counters
//     and one SPSC ShmRing per directed same-node pair,
//   * one eventfd doorbell per member (ring producers ring it; the
//     member's event loop sleeps on it),
//   * one loopback TCP listener per member that has any cross-node peer,
//     with the `<proc> <host> <port>` map written to a rendezvous file.
//
// attach(id) — called wherever member `id` actually runs — spins up that
// member's endpoint: a single-threaded epoll event loop owning all of its
// sockets and inbound rings, delivering decoded frames into the local
// Mailbox. Sends go directly from the application thread: SHM frames are
// written straight into the peer's ring (the doorbell wakes its loop);
// TCP frames attempt an immediate nonblocking send and fall back to a
// per-connection write queue drained on EPOLLOUT.
//
// Zero copy on the SHM path: a frame is written once into the ring
// (payload gathered next to its header) and the consumer hands out
// PayloadViews aliasing the ring pages; the slot is released when the
// last view dies. Payloads at or below shm_inline_bytes are copied out
// instead so tiny control messages never pin ring space.
//
// Backpressure: a TCP write queue above its high watermark (or a
// persistently full ring) flips Endpoint::under_pressure(), which the
// coupling runtime folds into the collective BufferPressure protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "transport/real/shm_ring.hpp"
#include "transport/transport.hpp"

namespace ccf::transport::real {

/// Aggregate counters in the shared mapping, so multi-process runs still
/// report one coherent set after the children exit.
struct SharedCounters {
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> bytes_framed{0};
  std::atomic<std::uint64_t> shm_frames{0};
  std::atomic<std::uint64_t> shm_zero_copy_deliveries{0};
  std::atomic<std::uint64_t> shm_zero_copy_bytes{0};
  std::atomic<std::uint64_t> shm_inline_copies{0};
  std::atomic<std::uint64_t> shm_inline_bytes{0};
  std::atomic<std::uint64_t> shm_producer_stalls{0};
  std::atomic<std::uint64_t> shm_doorbell_writes{0};
  std::atomic<std::uint64_t> tcp_frames{0};
  std::atomic<std::uint64_t> tcp_bytes{0};
  std::atomic<std::uint64_t> tcp_read_syscalls{0};
  std::atomic<std::uint64_t> tcp_write_syscalls{0};
  std::atomic<std::uint64_t> tcp_connections{0};
  std::atomic<std::uint64_t> tcp_rx_blocks{0};
  std::atomic<std::uint64_t> tcp_zero_copy_deliveries{0};
  std::atomic<std::uint64_t> tcp_zero_copy_bytes{0};
  std::atomic<std::uint64_t> decode_errors{0};
  std::atomic<std::uint64_t> epoll_waits{0};
  std::atomic<std::uint64_t> doorbells{0};
  std::atomic<std::uint64_t> backpressure_raises{0};
  std::atomic<std::uint64_t> backpressure_clears{0};
  std::atomic<std::uint32_t> closed{0};  ///< cluster-wide shutdown flag
};

/// Per-member doorbell gate in the shared mapping (one word per member,
/// following SharedCounters). A member's event loop flips it to
/// kDoorSleeping just before epoll_wait (then re-checks its rings — the
/// classic sleep/publish race); SHM producers ring the eventfd only when
/// they observe — and win — the kDoorSleeping -> kDoorAwake edge. A burst
/// into an awake consumer costs zero doorbell syscalls.
inline constexpr std::uint32_t kDoorAwake = 0;
inline constexpr std::uint32_t kDoorSleeping = 1;

/// Parses a rendezvous file (`proc host port` per line, '#' comments).
std::unordered_map<ProcId, std::pair<std::string, std::uint16_t>> load_rendezvous(
    const std::string& path);

class RealEndpoint;

class RealTransport final : public Transport,
                            public std::enable_shared_from_this<RealTransport> {
 public:
  RealTransport(TransportOptions options, std::vector<ProcId> members);
  ~RealTransport() override;

  RealTransport(const RealTransport&) = delete;
  RealTransport& operator=(const RealTransport&) = delete;

  std::shared_ptr<Endpoint> attach(ProcId id) override;
  void shutdown() override;
  TransportCounters counters() const override;

  const std::string& rendezvous_path() const { return rendezvous_path_; }
  const TransportOptions& options() const { return options_; }
  const std::vector<ProcId>& members() const { return members_; }

  /// Resolves a member's TCP listener address (rendezvous file first,
  /// falling back to the inherited port table).
  std::pair<std::string, std::uint16_t> peer_address(ProcId peer) const;

 private:
  friend class RealEndpoint;

  std::size_t index_of(ProcId id) const;
  bool same_node(ProcId a, ProcId b) const { return options_.node(a) == options_.node(b); }

  /// Ring carrying producer -> consumer traffic; null when cross-node.
  ShmRing ring(std::size_t producer_index, std::size_t consumer_index) const;

  TransportOptions options_;
  std::vector<ProcId> members_;
  std::unordered_map<ProcId, std::size_t> member_index_;

  std::atomic<std::uint32_t>* door_state(std::size_t member_index) const {
    return door_state_ + member_index;
  }

  void* shm_ = nullptr;
  std::size_t shm_bytes_ = 0;
  SharedCounters* shared_ = nullptr;
  std::atomic<std::uint32_t>* door_state_ = nullptr;  ///< in the shared mapping
  /// Byte offset of ring (i -> j) within the mapping; SIZE_MAX when the
  /// pair is cross-node (TCP).
  std::vector<std::size_t> ring_offset_;

  std::vector<int> doorbell_;    ///< eventfd per member index
  std::vector<int> listen_fd_;   ///< -1 when the member has no remote peer
  std::vector<std::uint16_t> port_;
  std::string rendezvous_path_;
  bool owns_rendezvous_file_ = false;

  std::mutex attach_mutex_;
  std::set<ProcId> attached_;
  std::vector<std::weak_ptr<RealEndpoint>> local_endpoints_;
};

}  // namespace ccf::transport::real
