// Wire framing for the real transport (docs/PROTOCOL.md, "Wire transport").
//
// Both real paths — SHM rings and TCP streams — carry the same
// self-contained frame: a fixed 40-byte header followed by the payload
// bytes, exactly as the Message's PayloadView holds them. Because the
// data plane's wire frames are already self-contained buffers, a frame
// can be mapped (SHM) or copied (TCP) without any re-framing, and the
// receive side hands out PayloadViews into the frame in place.
//
// The decode path treats its input as hostile (a TCP peer can send
// anything): magic/version are verified, the length prefix is validated
// against an explicit cap BEFORE any allocation, and arithmetic that
// could wrap (length near 2^64) is checked in a widened/underflow-safe
// form. Malformed input surfaces as FramingError, never UB — regression
// tests run the decoder under ASan/UBSan on truncated, oversized and
// corrupt inputs (tests/transport/wire_test.cpp).
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "transport/message.hpp"
#include "util/check.hpp"

namespace ccf::transport::real {

/// Malformed or hostile wire input (bad magic, oversized length prefix,
/// truncated frame, corrupt handshake).
class FramingError : public util::Error {
 public:
  explicit FramingError(const std::string& what) : Error(what) {}
};

inline constexpr std::uint32_t kFrameMagic = 0xCCF7F00Du;
inline constexpr std::uint16_t kWireVersion = 1;

/// Fixed-size frame header; all fields little-endian host order (the
/// transport never crosses byte orders on one machine; a heterogeneous
/// deployment would bump kWireVersion).
struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint16_t version = kWireVersion;
  std::uint16_t flags = 0;
  std::int32_t src = 0;
  std::int32_t dst = 0;
  std::int32_t tag = 0;
  std::uint32_t reserved = 0;
  std::uint64_t seq = 0;
  std::uint64_t payload_bytes = 0;
};
static_assert(sizeof(FrameHeader) == 40, "wire frame header is 40 bytes");
static_assert(std::is_trivially_copyable_v<FrameHeader>);

inline constexpr std::size_t kFrameHeaderBytes = sizeof(FrameHeader);

/// Total wire size of a frame carrying `payload_bytes` of payload.
inline std::size_t frame_bytes(std::size_t payload_bytes) {
  return kFrameHeaderBytes + payload_bytes;
}

inline FrameHeader make_frame_header(const Message& m) {
  FrameHeader h;
  h.src = m.src;
  h.dst = m.dst;
  h.tag = m.tag;
  h.seq = m.seq;
  h.payload_bytes = m.payload.size();
  return h;
}

/// Validates a decoded header against the hostile-input guards.
/// `max_payload` caps the length prefix; a frame for another destination
/// (or from an unknown source) is rejected by the caller, which knows the
/// membership.
inline void validate_frame_header(const FrameHeader& h, std::size_t max_payload) {
  if (h.magic != kFrameMagic)
    throw FramingError("wire frame rejected: bad magic");
  if (h.version != kWireVersion)
    throw FramingError("wire frame rejected: unsupported version " +
                       std::to_string(h.version));
  // The length prefix is attacker-controlled: compare as u64 against the
  // cap before narrowing or allocating, so a prefix like 2^63 can neither
  // wrap size arithmetic nor trigger a huge allocation.
  if (h.payload_bytes > max_payload)
    throw FramingError("wire frame rejected: length prefix " +
                       std::to_string(h.payload_bytes) + " exceeds cap " +
                       std::to_string(max_payload));
}

/// Reads a header out of a raw byte span (which must hold at least
/// kFrameHeaderBytes).
inline FrameHeader read_frame_header(const std::byte* data) {
  FrameHeader h;
  std::memcpy(&h, data, sizeof h);
  return h;
}

/// Incremental length-prefixed frame decoder for the TCP byte stream.
/// feed() appends raw received bytes; next() yields complete messages one
/// at a time and throws FramingError on malformed input. The connection
/// owner drops the peer on the first error — after hostile bytes there is
/// no trustworthy framing left to resynchronize on.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload_bytes)
      : max_payload_(max_payload_bytes) {}

  void feed(const std::byte* data, std::size_t n) {
    buffer_.insert(buffer_.end(), data, data + n);
  }

  /// Complete frames currently decodable. Returns false when more bytes
  /// are needed (a truncated buffer is simply "not yet complete"; a
  /// stream that *ends* mid-frame is the caller's FramingError).
  bool next(Message& out) {
    if (buffer_.size() - cursor_ < kFrameHeaderBytes) {
      compact();
      return false;
    }
    const FrameHeader h = read_frame_header(buffer_.data() + cursor_);
    validate_frame_header(h, max_payload_);
    const std::size_t need = static_cast<std::size_t>(h.payload_bytes);
    if (buffer_.size() - cursor_ - kFrameHeaderBytes < need) {
      compact();
      return false;
    }
    out.src = h.src;
    out.dst = h.dst;
    out.tag = h.tag;
    out.seq = h.seq;
    std::vector<std::byte> payload(buffer_.begin() +
                                       static_cast<std::ptrdiff_t>(cursor_ + kFrameHeaderBytes),
                                   buffer_.begin() +
                                       static_cast<std::ptrdiff_t>(cursor_ + kFrameHeaderBytes +
                                                                   need));
    out.payload = make_payload(std::move(payload));
    cursor_ += kFrameHeaderBytes + need;
    return true;
  }

  /// Bytes buffered but not yet consumed (a nonzero value at EOF means
  /// the stream died mid-frame).
  std::size_t pending() const { return buffer_.size() - cursor_; }

 private:
  void compact() {
    if (cursor_ == 0) return;
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    cursor_ = 0;
  }

  std::size_t max_payload_;
  std::vector<std::byte> buffer_;
  std::size_t cursor_ = 0;
};

/// Vectored TCP write queue: frames enter as (header, payload-view) pairs
/// — no flattening copy — and leave through gather(), which builds one
/// iovec chain over every queued byte so a single sendmsg() drains the
/// whole queue. consume() advances past whatever the kernel accepted,
/// resuming mid-iovec (mid-header or mid-payload) after a partial write.
/// Raw blobs (handshakes, parked pre-handshake bytes) queue via
/// push_raw() and interleave in order with frames.
class SendQueue {
 public:
  bool empty() const { return items_.empty(); }

  /// Unsent bytes across the queue (the first `offset` bytes of the front
  /// item are already on the wire).
  std::size_t bytes() const { return bytes_; }

  void push_frame(const FrameHeader& h, Payload payload) {
    bytes_ += kFrameHeaderBytes + payload.size();
    Item it;
    it.header = h;
    it.payload = std::move(payload);
    items_.push_back(std::move(it));
  }

  void push_raw(std::vector<std::byte> raw) {
    bytes_ += raw.size();
    Item it;
    it.raw = std::move(raw);
    items_.push_back(std::move(it));
  }

  /// Fills `iov` with up to `max_iov` spans covering the unsent bytes in
  /// queue order, starting mid-item when a previous write was partial.
  /// Returns the number of spans filled. Pointers stay valid until the
  /// next push/consume (deque references are stable, payloads refcounted).
  std::size_t gather(struct iovec* iov, std::size_t max_iov) const {
    std::size_t count = 0;
    std::size_t skip = offset_;
    for (const Item& it : items_) {
      if (count == max_iov) break;
      const std::size_t head_bytes = it.head_bytes();
      if (skip < head_bytes) {
        iov[count].iov_base = const_cast<std::byte*>(it.head_data() + skip);
        iov[count].iov_len = head_bytes - skip;
        ++count;
        skip = 0;
      } else {
        skip -= head_bytes;
      }
      const std::size_t payload_bytes = it.payload.size();
      if (payload_bytes != 0) {
        if (count == max_iov) break;
        if (skip < payload_bytes) {
          iov[count].iov_base = const_cast<std::byte*>(it.payload.data() + skip);
          iov[count].iov_len = payload_bytes - skip;
          ++count;
          skip = 0;
        } else {
          skip -= payload_bytes;
        }
      }
    }
    return count;
  }

  /// Marks `n` more bytes as written; fully sent items are dropped (and
  /// their payload refs released), a partially sent front item resumes at
  /// its new offset on the next gather().
  void consume(std::size_t n) {
    CCF_CHECK(n <= bytes_, "SendQueue::consume past queued bytes");
    bytes_ -= n;
    offset_ += n;
    while (!items_.empty()) {
      const Item& front = items_.front();
      const std::size_t total = front.head_bytes() + front.payload.size();
      if (offset_ < total) break;
      offset_ -= total;
      items_.pop_front();
    }
  }

 private:
  struct Item {
    FrameHeader header;          ///< valid iff raw is empty
    std::vector<std::byte> raw;  ///< handshake / pre-framed blob
    Payload payload;             ///< zero-copy view; empty for raw items

    std::size_t head_bytes() const { return raw.empty() ? kFrameHeaderBytes : raw.size(); }
    const std::byte* head_data() const {
      return raw.empty() ? reinterpret_cast<const std::byte*>(&header) : raw.data();
    }
  };

  std::deque<Item> items_;
  std::size_t offset_ = 0;  ///< sent bytes of items_.front()
  std::size_t bytes_ = 0;
};

/// Block-based zero-copy frame decoder for the TCP receive path.
///
/// recv_buffer() hands out writable space inside a refcounted block sized
/// to hold at least the remainder of the current partial frame (so a big
/// frame finishes in one more read instead of 64KiB slivers), the socket
/// read lands directly in the block, and next() parses every complete
/// frame in place — many frames per syscall. Payloads above the inline
/// threshold are delivered as PayloadViews aliasing the block via the
/// shared_ptr aliasing constructor; the block is freed when the last view
/// dies. Small payloads are copied out so control messages never pin a
/// whole block. A partial frame at the block edge is copied into the next
/// block's head (bounded by one frame, the only copy on this path).
///
/// Same hostile-input posture as FrameDecoder (which is kept as the
/// reference decoder for differential tests): headers are validated
/// against the payload cap before any allocation or arithmetic on the
/// attacker-controlled length.
class BlockDecoder {
 public:
  struct Stats {
    std::uint64_t blocks_allocated = 0;
    std::uint64_t zero_copy_deliveries = 0;
    std::uint64_t zero_copy_bytes = 0;
    std::uint64_t inline_copies = 0;
  };

  BlockDecoder(std::size_t max_payload_bytes, std::size_t block_bytes,
               std::size_t inline_copy_bytes)
      : max_payload_(max_payload_bytes),
        block_bytes_(block_bytes < kFrameHeaderBytes ? kFrameHeaderBytes : block_bytes),
        inline_copy_bytes_(inline_copy_bytes) {}

  /// Writable space for the next read. Rotates to a fresh block (carrying
  /// the unparsed tail) when the current frame cannot complete in the
  /// remaining space. Throws FramingError on a hostile length prefix —
  /// the size hint must never be attacker-amplified.
  std::pair<std::byte*, std::size_t> recv_buffer() {
    const std::size_t need = bytes_needed();
    const std::size_t tail = fill_ - parse_;
    const std::size_t rest = need > tail ? need - tail : 1;
    if (block_ == nullptr || cap_ - fill_ < rest)
      rotate(block_bytes_ > rest + tail ? block_bytes_ : rest + tail);
    return {block_.get() + fill_, cap_ - fill_};
  }

  /// Accounts `n` bytes the caller read into the last recv_buffer() span.
  void bytes_received(std::size_t n) {
    CCF_CHECK(fill_ + n <= cap_, "BlockDecoder fed past its block");
    fill_ += n;
  }

  /// Copy-in variant for bytes that already live elsewhere (handshake
  /// leftovers, tests).
  void feed(const std::byte* data, std::size_t n) {
    while (n != 0) {
      const auto [dst, space] = recv_buffer();
      const std::size_t take = n < space ? n : space;
      std::memcpy(dst, data, take);
      bytes_received(take);
      data += take;
      n -= take;
    }
  }

  /// Next complete frame parsed in place, or false when more bytes are
  /// needed. Throws FramingError on malformed input.
  bool next(Message& out) {
    const std::size_t avail = fill_ - parse_;
    if (avail < kFrameHeaderBytes) return false;
    const FrameHeader h = read_frame_header(block_.get() + parse_);
    validate_frame_header(h, max_payload_);
    const std::size_t payload_bytes = static_cast<std::size_t>(h.payload_bytes);
    if (avail - kFrameHeaderBytes < payload_bytes) return false;
    out.src = h.src;
    out.dst = h.dst;
    out.tag = h.tag;
    out.seq = h.seq;
    const std::byte* payload = block_.get() + parse_ + kFrameHeaderBytes;
    if (payload_bytes <= inline_copy_bytes_) {
      out.payload = make_payload(std::vector<std::byte>(payload, payload + payload_bytes));
      ++stats_.inline_copies;
    } else {
      out.payload = PayloadView(std::shared_ptr<const void>(block_, payload), payload,
                                payload_bytes);
      ++stats_.zero_copy_deliveries;
      stats_.zero_copy_bytes += payload_bytes;
    }
    parse_ += kFrameHeaderBytes + payload_bytes;
    return true;
  }

  /// Bytes received but not yet parsed (nonzero at EOF = truncated stream).
  std::size_t pending() const { return fill_ - parse_; }

  const Stats& stats() const { return stats_; }

 private:
  /// Wire bytes needed to complete the frame at the parse cursor: a full
  /// header once one is visible, else just the header.
  std::size_t bytes_needed() const {
    if (fill_ - parse_ < kFrameHeaderBytes) return kFrameHeaderBytes;
    const FrameHeader h = read_frame_header(block_.get() + parse_);
    validate_frame_header(h, max_payload_);
    return kFrameHeaderBytes + static_cast<std::size_t>(h.payload_bytes);
  }

  void rotate(std::size_t new_cap) {
    std::shared_ptr<std::byte[]> fresh(new std::byte[new_cap]);
    const std::size_t tail = fill_ - parse_;
    if (tail != 0) std::memcpy(fresh.get(), block_.get() + parse_, tail);
    block_ = std::move(fresh);
    cap_ = new_cap;
    parse_ = 0;
    fill_ = tail;
    ++stats_.blocks_allocated;
  }

  std::size_t max_payload_;
  std::size_t block_bytes_;
  std::size_t inline_copy_bytes_;
  std::shared_ptr<std::byte[]> block_;
  std::size_t cap_ = 0;
  std::size_t fill_ = 0;   ///< bytes received into the block
  std::size_t parse_ = 0;  ///< bytes parsed out of the block
  Stats stats_;
};

// -- Connection handshake ---------------------------------------------------
//
// The first bytes on a TCP connection, before any frame:
//   connector: HELLO   { magic, version, src proc, dst proc, identity }
//   acceptor:  WELCOME { magic, version, src proc, dst proc, identity }
// `identity` is the human-readable "(program, rank, shard)" string from
// TransportOptions::identity; the receiving side verifies both the proc
// id (it must be a cluster member on the expected node) and, when it has
// an expectation for that id, the announced identity. A mismatch closes
// the connection before any frame is accepted.

inline constexpr std::uint32_t kHelloMagic = 0xCCF7E110u;
inline constexpr std::uint32_t kWelcomeMagic = 0xCCF7E111u;
inline constexpr std::size_t kMaxIdentityBytes = 256;

struct Handshake {
  std::uint32_t magic = kHelloMagic;
  std::int32_t src = 0;  ///< sender's proc id
  std::int32_t dst = 0;  ///< who the sender believes it is talking to
  std::string identity;
};

/// Fixed prelude of an encoded handshake; the identity bytes follow.
struct HandshakePrelude {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t identity_bytes = 0;
  std::int32_t src = 0;
  std::int32_t dst = 0;
};
static_assert(sizeof(HandshakePrelude) == 16);

inline std::vector<std::byte> encode_handshake(const Handshake& h) {
  CCF_CHECK(h.identity.size() <= kMaxIdentityBytes,
            "handshake identity too long: " << h.identity.size());
  HandshakePrelude p;
  p.magic = h.magic;
  p.version = kWireVersion;
  p.identity_bytes = static_cast<std::uint16_t>(h.identity.size());
  p.src = h.src;
  p.dst = h.dst;
  std::vector<std::byte> out(sizeof p + h.identity.size());
  std::memcpy(out.data(), &p, sizeof p);
  std::memcpy(out.data() + sizeof p, h.identity.data(), h.identity.size());
  return out;
}

/// Incremental handshake decoder; same hostile-input posture as
/// FrameDecoder. Returns false until enough bytes arrived; `consumed`
/// reports how many of the fed bytes belong to the handshake (the rest
/// are the first frames).
inline bool decode_handshake(const std::byte* data, std::size_t n,
                             std::uint32_t expected_magic, Handshake& out,
                             std::size_t& consumed) {
  if (n < sizeof(HandshakePrelude)) return false;
  HandshakePrelude p;
  std::memcpy(&p, data, sizeof p);
  if (p.magic != expected_magic) throw FramingError("handshake rejected: bad magic");
  if (p.version != kWireVersion)
    throw FramingError("handshake rejected: unsupported version " +
                       std::to_string(p.version));
  if (p.identity_bytes > kMaxIdentityBytes)
    throw FramingError("handshake rejected: identity length " +
                       std::to_string(p.identity_bytes) + " exceeds cap " +
                       std::to_string(kMaxIdentityBytes));
  if (n - sizeof p < p.identity_bytes) return false;
  out.magic = p.magic;
  out.src = p.src;
  out.dst = p.dst;
  out.identity.assign(reinterpret_cast<const char*>(data + sizeof p), p.identity_bytes);
  consumed = sizeof p + p.identity_bytes;
  return true;
}

}  // namespace ccf::transport::real
