// Single-producer single-consumer byte ring over shared memory.
//
// One ring per directed same-node process pair. The memory is a
// MAP_SHARED anonymous mapping created by the transport host *before* the
// member processes fork, so both sides see the same pages with no
// filesystem object to leak. Layout:
//
//   [RingHeader][capacity data bytes]
//
// Records are 8-byte-aligned `[u32 len][u32 commit][len payload bytes]`
// and never wrap: when a record does not fit before the end of the ring,
// the producer publishes a wrap marker (len == kWrapMarker) and continues
// at the start. Cursors are monotonic byte positions (offset = pos %
// capacity): `head` is advanced by the producer after the record is fully
// written (release ordering), `tail` by the consumer once a record's
// bytes are no longer referenced by any PayloadView.
//
// Torn-write detection: the commit word is written last (release) and
// verified on read; a record visible past `head` whose commit word is
// wrong means a crashed or misbehaving producer, and surfaces as a
// ProtocolViolation instead of delivering garbage.
//
// Zero copy: the consumer parses the wire frame in place and hands out
// PayloadViews aliasing the ring pages; release order may differ from
// delivery order (views are refcounted), so released records are folded
// into `tail` as a contiguous prefix by RingConsumer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "util/check.hpp"

namespace ccf::transport::real {

inline constexpr std::uint32_t kRecordCommit = 0x5A5AC0DEu;
inline constexpr std::uint32_t kWrapMarker = 0xFFFFFFFFu;
inline constexpr std::size_t kRecordHeaderBytes = 8;  // u32 len + u32 commit

struct alignas(64) RingHeader {
  std::atomic<std::uint64_t> head{0};  ///< producer publish cursor
  char pad0[56];
  std::atomic<std::uint64_t> tail{0};  ///< consumer release cursor
  char pad1[56];
  std::atomic<std::uint32_t> closed{0};
  std::uint32_t capacity = 0;  ///< data bytes following the header
};
static_assert(sizeof(RingHeader) == 192);

/// Non-owning view over one ring's shared memory; cheap to copy. The
/// producer process calls try_push / close; the consumer reads via
/// RingConsumer below.
class ShmRing {
 public:
  ShmRing() = default;

  static std::size_t bytes_required(std::size_t capacity) {
    return sizeof(RingHeader) + capacity;
  }

  /// Formats `mem` (at least bytes_required(capacity)) as an empty ring.
  static ShmRing create(void* mem, std::size_t capacity) {
    CCF_REQUIRE(capacity >= 64 && capacity % 8 == 0,
                "ring capacity must be a multiple of 8 and >= 64, got " << capacity);
    auto* h = new (mem) RingHeader();
    h->capacity = static_cast<std::uint32_t>(capacity);
    return ShmRing(h);
  }

  /// Adopts an already-formatted ring (the other side of the mapping).
  static ShmRing open(void* mem) { return ShmRing(static_cast<RingHeader*>(mem)); }

  std::size_t capacity() const { return header_->capacity; }
  bool closed() const { return header_->closed.load(std::memory_order_acquire) != 0; }
  void close() { header_->closed.store(1, std::memory_order_release); }

  /// Bytes currently occupied (records published and not yet released).
  std::size_t used() const {
    return static_cast<std::size_t>(header_->head.load(std::memory_order_acquire) -
                                    header_->tail.load(std::memory_order_acquire));
  }

  /// Publishes one record gathering `spans` back to back. Returns false
  /// (without writing anything) when the ring lacks space — the caller
  /// retries, counting a producer stall. Throws when the record can never
  /// fit. Producer side only.
  bool try_push(const std::byte* const* spans, const std::size_t* span_bytes,
                std::size_t span_count);

  /// Convenience for a two-part record (frame header + payload).
  bool try_push2(const void* a, std::size_t a_bytes, const void* b, std::size_t b_bytes) {
    const std::byte* spans[2] = {static_cast<const std::byte*>(a),
                                 static_cast<const std::byte*>(b)};
    const std::size_t bytes[2] = {a_bytes, b_bytes};
    return try_push(spans, bytes, 2);
  }

  RingHeader* header() { return header_; }
  const RingHeader* header() const { return header_; }
  std::byte* data() { return reinterpret_cast<std::byte*>(header_ + 1); }
  const std::byte* data() const { return reinterpret_cast<const std::byte*>(header_ + 1); }

  explicit operator bool() const { return header_ != nullptr; }

 private:
  explicit ShmRing(RingHeader* h) : header_(h) {}

  RingHeader* header_ = nullptr;
};

/// Consumer-side cursor and out-of-order release bookkeeping for one
/// ring. Lives in the consuming process (NOT in shared memory). next()
/// runs on the endpoint's event loop; release() may run on any thread
/// that drops the last PayloadView into a record, hence the mutex.
class RingConsumer {
 public:
  RingConsumer() = default;
  explicit RingConsumer(ShmRing ring) : ring_(ring) {}

  struct Record {
    const std::byte* data = nullptr;  ///< record payload (the wire frame)
    std::size_t size = 0;
    std::uint64_t begin = 0;  ///< release interval [begin, end)
    std::uint64_t end = 0;
  };

  /// Next committed record, or nullopt when the ring is drained up to
  /// `head`. Wrap markers and alignment padding are absorbed silently
  /// (their bytes are folded into the following record's interval).
  std::optional<Record> next();

  /// Marks [begin, end) as no longer referenced; advances the shared
  /// `tail` over the contiguous released prefix. Thread-safe. Callers
  /// that drain several contiguous records merge their intervals and
  /// release once — one mutex acquisition and tail store per batch.
  void release(std::uint64_t begin, std::uint64_t end);

  /// True when records are published past the parse cursor — the event
  /// loop's pre-sleep check behind the coalesced doorbell (a producer
  /// only rings the eventfd on the idle edge, so the consumer must
  /// re-check after declaring itself asleep).
  bool has_pending() const {
    return ring_ && ring_.header()->head.load(std::memory_order_acquire) != scan_;
  }

  ShmRing& ring() { return ring_; }

 private:
  ShmRing ring_;
  std::uint64_t scan_ = 0;          ///< next unparsed position
  std::uint64_t pending_skip_ = 0;  ///< pad/marker bytes awaiting the next record
  std::mutex mutex_;
  std::uint64_t release_floor_ = 0;
  std::map<std::uint64_t, std::uint64_t> released_;  ///< begin -> end, out of order
};

}  // namespace ccf::transport::real
