#include "transport/real/shm_ring.hpp"

#include <cstring>

namespace ccf::transport::real {

namespace {

inline std::size_t align8(std::size_t n) { return (n + 7u) & ~std::size_t{7}; }

}  // namespace

bool ShmRing::try_push(const std::byte* const* spans, const std::size_t* span_bytes,
                       std::size_t span_count) {
  std::size_t len = 0;
  for (std::size_t i = 0; i < span_count; ++i) len += span_bytes[i];
  const std::size_t cap = capacity();
  const std::size_t need = kRecordHeaderBytes + align8(len);
  CCF_REQUIRE(need <= cap,
              "SHM record of " << len << " bytes can never fit a " << cap
                               << "-byte ring; raise TransportOptions::shm_ring_bytes");

  // head is producer-owned: relaxed read, release publish.
  const std::uint64_t head = header_->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
  const std::size_t offset = static_cast<std::size_t>(head % cap);
  const std::size_t to_end = cap - offset;

  // Records never wrap: either pad to the ring start (publishing a wrap
  // marker when there is room for one) or place the record here.
  std::size_t pad = 0;
  bool marker = false;
  if (to_end < kRecordHeaderBytes) {
    pad = to_end;  // too small even for a marker; consumer skips implicitly
  } else if (need > to_end) {
    pad = to_end;  // marker record occupies the remainder
    marker = true;
  }
  if (head + pad + need - tail > cap) return false;  // full: caller stalls

  if (marker) {
    std::byte* rec = data() + offset;
    std::uint32_t words[2] = {kWrapMarker, kRecordCommit};
    std::memcpy(rec, words, sizeof words);
  }
  const std::size_t rec_offset = pad == 0 ? offset : 0;
  std::byte* rec = data() + rec_offset;
  const std::uint32_t len32 = static_cast<std::uint32_t>(len);
  std::memcpy(rec, &len32, sizeof len32);
  std::byte* body = rec + kRecordHeaderBytes;
  for (std::size_t i = 0; i < span_count; ++i) {
    if (span_bytes[i] != 0) std::memcpy(body, spans[i], span_bytes[i]);
    body += span_bytes[i];
  }
  // Commit word last: a consumer that sees the record (via the head
  // publish below) is guaranteed a fully written body; anything else is a
  // torn write and trips the check in RingConsumer::next().
  const std::uint32_t commit = kRecordCommit;
  std::memcpy(rec + sizeof(std::uint32_t), &commit, sizeof commit);
  std::atomic_thread_fence(std::memory_order_release);
  header_->head.store(head + pad + need, std::memory_order_release);
  return true;
}

std::optional<RingConsumer::Record> RingConsumer::next() {
  const std::size_t cap = ring_.capacity();
  const std::uint64_t head = ring_.header()->head.load(std::memory_order_acquire);
  for (;;) {
    if (scan_ == head) return std::nullopt;
    CCF_CHECK(scan_ < head, "SHM ring consumer cursor ahead of head");
    const std::size_t offset = static_cast<std::size_t>(scan_ % cap);
    const std::size_t to_end = cap - offset;
    if (to_end < kRecordHeaderBytes) {
      // Implicit pad: too small for any record; both sides skip it.
      pending_skip_ += to_end;
      scan_ += to_end;
      continue;
    }
    const std::byte* rec = ring_.data() + offset;
    std::uint32_t len32 = 0, commit = 0;
    std::memcpy(&len32, rec, sizeof len32);
    std::memcpy(&commit, rec + sizeof len32, sizeof commit);
    if (commit != kRecordCommit)
      throw util::ProtocolViolation("torn or corrupt SHM ring record (commit word "
                                    "mismatch): producer died mid-write?");
    if (len32 == kWrapMarker) {
      pending_skip_ += to_end;
      scan_ += to_end;
      continue;
    }
    const std::size_t len = len32;
    const std::size_t need = kRecordHeaderBytes + ((len + 7u) & ~std::size_t{7});
    CCF_CHECK(need <= to_end && scan_ + need <= head,
              "corrupt SHM ring record length " << len);
    Record out;
    out.data = rec + kRecordHeaderBytes;
    out.size = len;
    out.begin = scan_ - pending_skip_;
    out.end = scan_ + need;
    pending_skip_ = 0;
    scan_ += need;
    return out;
  }
}

void RingConsumer::release(std::uint64_t begin, std::uint64_t end) {
  // The tail store stays under the mutex: with concurrent releases an
  // unlocked store could publish a stale (smaller) tail after a newer
  // one, making the ring look fuller than it is.
  std::lock_guard<std::mutex> lock(mutex_);
  released_.emplace(begin, end);
  const std::uint64_t before = release_floor_;
  auto it = released_.begin();
  while (it != released_.end() && it->first == release_floor_) {
    release_floor_ = it->second;
    it = released_.erase(it);
  }
  // An out-of-order release leaves the floor unchanged; skip the
  // (cross-core) tail store until the gap closes.
  if (release_floor_ != before)
    ring_.header()->tail.store(release_floor_, std::memory_order_release);
}

}  // namespace ccf::transport::real
