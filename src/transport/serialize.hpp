// Byte-oriented serialization for message payloads.
//
// Writer appends trivially copyable values, strings, and vectors to a byte
// buffer; Reader consumes them in the same order. Bounds are checked on
// every read so a malformed payload surfaces as an exception, not UB.
// Length prefixes are validated against the remaining bytes *before* any
// allocation, so a corrupt length can neither wrap the bounds check nor
// trigger a huge allocation. Reader::view() borrows a range of payload
// bytes in place (zero copy) for bulk-data paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "transport/message.hpp"
#include "util/check.hpp"

namespace ccf::transport {

/// Byte count of the length prefix Writer::put_vector/put_string emit.
/// The zero-copy data plane (BufferPool wire frames, pack_wire_payload)
/// reproduces exactly this framing so aliased and packed sends are
/// byte-identical on the wire.
inline constexpr std::size_t kLengthPrefixBytes = sizeof(std::uint64_t);

class Writer {
 public:
  Writer() = default;

  /// Exact-reserve constructor: pre-sizes the buffer so a writer whose
  /// final size is known up front performs a single allocation and no
  /// incremental-growth reallocation.
  explicit Writer(std::size_t reserve_bytes) { buffer_.reserve(reserve_bytes); }

  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>, "put() requires a trivially copyable type");
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buffer_.insert(buffer_.end(), p, p + sizeof(T));
  }

  void put_string(const std::string& s) {
    buffer_.reserve(buffer_.size() + kLengthPrefixBytes + s.size());
    put<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buffer_.insert(buffer_.end(), p, p + s.size());
  }

  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>, "put_vector() requires trivially copyable elements");
    buffer_.reserve(buffer_.size() + kLengthPrefixBytes + v.size() * sizeof(T));
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buffer_.insert(buffer_.end(), p, p + v.size() * sizeof(T));
  }

  /// Appends raw bytes without a length prefix (caller knows the size).
  void put_raw(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const std::byte*>(data);
    buffer_.insert(buffer_.end(), p, p + bytes);
  }

  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return buffer_.capacity(); }

  /// Consumes the writer into an immutable payload (adopts the buffer, no
  /// copy).
  Payload take() { return make_payload(std::move(buffer_)); }

  std::vector<std::byte> take_bytes() { return std::move(buffer_); }

 private:
  std::vector<std::byte> buffer_;
};

class Reader {
 public:
  explicit Reader(Payload payload) : payload_(std::move(payload)) {
    CCF_REQUIRE(payload_, "Reader over null payload");
  }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>, "get() requires a trivially copyable type");
    check_remaining(sizeof(T));
    T value;
    std::memcpy(&value, payload_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    CCF_REQUIRE(n <= remaining(),
                "payload underflow: string of " << n << " bytes, have " << remaining());
    std::string s(reinterpret_cast<const char*>(payload_.data() + offset_),
                  static_cast<std::size_t>(n));
    offset_ += static_cast<std::size_t>(n);
    return s;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>, "get_vector() requires trivially copyable elements");
    // Validate the element count against the remaining bytes, not
    // n * sizeof(T): the product wraps for a malformed length like 2^61,
    // which would pass a post-multiplication check and then attempt a
    // huge allocation/memcpy.
    const auto n64 = get<std::uint64_t>();
    CCF_REQUIRE(n64 <= remaining() / sizeof(T),
                "payload underflow: vector of " << n64 << " elements of " << sizeof(T)
                                                << " bytes, have " << remaining() << " bytes");
    const auto n = static_cast<std::size_t>(n64);
    std::vector<T> v(n);
    // n == 0 leaves v.data() null; memcpy's arguments must be non-null
    // even for zero sizes.
    if (n != 0) std::memcpy(v.data(), payload_.data() + offset_, n * sizeof(T));
    offset_ += n * sizeof(T);
    return v;
  }

  void get_raw(void* out, std::size_t bytes) {
    check_remaining(bytes);
    std::memcpy(out, payload_.data() + offset_, bytes);
    offset_ += bytes;
  }

  /// Borrows the next `bytes` bytes in place and advances past them. The
  /// returned view shares ownership of the payload buffer — no copy; the
  /// bytes stay valid for the view's lifetime even after the Reader dies.
  Payload view(std::size_t bytes) {
    check_remaining(bytes);
    Payload v = payload_.slice(offset_, bytes);
    offset_ += bytes;
    return v;
  }

  std::size_t remaining() const { return payload_.size() - offset_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  void check_remaining(std::size_t need) const {
    CCF_REQUIRE(payload_.size() - offset_ >= need,
                "payload underflow: need " << need << " bytes, have " << (payload_.size() - offset_));
  }

  Payload payload_;
  std::size_t offset_ = 0;
};

}  // namespace ccf::transport
