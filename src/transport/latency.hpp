// Network latency/bandwidth models.
//
// The virtual-time executor charges each message a delivery delay from one
// of these models; the same models feed the buffering cost accounting so
// the deterministic experiments and the real microbenchmarks agree on
// relative magnitudes. The GigE preset approximates the paper's testbed
// (Gigabit Ethernet, early-2000s NICs).
#pragma once

#include <cstddef>
#include <memory>

namespace ccf::transport {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Delivery delay in seconds for a message of `bytes` payload bytes.
  /// `bytes` is the payload view's size — the bytes on the wire — which is
  /// identical whether the payload aliases a pooled snapshot frame or was
  /// packed fresh, so the modeled cost is independent of the copy path.
  virtual double delay_seconds(std::size_t bytes) const = 0;
};

/// Instant delivery (pure protocol-order experiments).
class ZeroLatency final : public LatencyModel {
 public:
  double delay_seconds(std::size_t) const override { return 0.0; }
};

/// Constant per-message delay regardless of size.
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(double seconds);
  double delay_seconds(std::size_t) const override { return seconds_; }

 private:
  double seconds_;
};

/// First-order LogP-style model: delay = latency + bytes / bandwidth.
class BandwidthLatency final : public LatencyModel {
 public:
  BandwidthLatency(double latency_seconds, double bytes_per_second);
  double delay_seconds(std::size_t bytes) const override;

  double latency() const { return latency_; }
  double bandwidth() const { return bandwidth_; }

 private:
  double latency_;
  double bandwidth_;
};

/// Gigabit-Ethernet-class preset: 50 us latency, ~110 MB/s effective.
std::shared_ptr<const LatencyModel> gige_model();

/// Presets calibrated against the real deployment transport on this class
/// of machine (bench/bench_transport_cal.cpp; constants recorded in
/// BENCH_transport.json). They let virtual-time runs charge delays
/// representative of what the SHM-ring / loopback-TCP paths actually cost
/// instead of the paper-era GigE numbers.
std::shared_ptr<const LatencyModel> shm_calibrated_model();
std::shared_ptr<const LatencyModel> tcp_calibrated_model();

/// Shared zero-latency singleton.
std::shared_ptr<const LatencyModel> zero_model();

/// Memory-copy cost model: seconds to buffer (memcpy) `bytes` within one
/// node. Mirrors the export-side buffering cost the paper's optimization
/// eliminates. Default preset approximates ~1.5 GB/s copy bandwidth with a
/// small per-operation overhead (allocator + bookkeeping), in the ballpark
/// of the paper's Pentium-4 testbed.
class CopyCostModel {
 public:
  CopyCostModel(double per_op_seconds, double bytes_per_second);

  double cost_seconds(std::size_t bytes) const;

  static const CopyCostModel& pentium4_preset();

  /// Calibrates a model from the host: measures the actual memcpy
  /// bandwidth over `probe_bytes` (a few repetitions) and pairs it with a
  /// small constant per-op overhead. Useful when real-thread runs should
  /// charge realistic virtual costs for this machine.
  static CopyCostModel measure_host(std::size_t probe_bytes = 1 << 21);

  double per_op_seconds() const { return per_op_seconds_; }
  double bytes_per_second() const { return bytes_per_second_; }

 private:
  double per_op_seconds_;
  double bytes_per_second_;
};

}  // namespace ccf::transport
