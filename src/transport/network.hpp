// In-memory network fabric connecting simulated processes.
//
// The Network owns one Mailbox per registered process id and routes
// messages by destination. Delivery is immediate and ordered per
// (sender, receiver) pair — the real-time runtime uses it directly; the
// virtual-time runtime schedules its own deliveries and uses the fabric
// only for addressing. Statistics (messages/bytes per endpoint) back the
// transport microbenches.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "transport/mailbox.hpp"
#include "transport/message.hpp"

namespace ccf::transport {

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

class Network {
 public:
  /// Registers a process id and returns its mailbox. Ids must be unique.
  std::shared_ptr<Mailbox> register_process(ProcId id);

  /// Looks up a mailbox; throws InvalidArgument for unknown ids.
  std::shared_ptr<Mailbox> mailbox(ProcId id) const;

  bool has_process(ProcId id) const;

  /// Stamps the per-sender sequence number and delivers into dst's mailbox.
  void send(Message m);

  /// Closes every mailbox (wakes all blocked receivers).
  void shutdown();

  std::vector<ProcId> process_ids() const;
  NetworkStats stats() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<ProcId, std::shared_ptr<Mailbox>> mailboxes_;
  std::unordered_map<ProcId, std::uint64_t> next_seq_;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

}  // namespace ccf::transport
