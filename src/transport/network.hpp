// In-memory network fabric connecting simulated processes.
//
// The Network owns one Mailbox per registered process id and routes
// messages by destination. Delivery is immediate and ordered per
// (sender, receiver) pair — the real-time runtime uses it directly; the
// virtual-time runtime schedules its own deliveries and uses the fabric
// only for addressing. Statistics (messages/bytes per endpoint) back the
// transport microbenches.
//
// An optional FaultInjector perturbs delivery: dropped messages vanish,
// duplicated ones are delivered twice, and "delayed" ones are held back
// until the next message to the same destination (the fabric has no
// clock, so a delay manifests as a reordering). Duplicating or holding a
// Message copies only its refcounted payload view, never the bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "transport/fault.hpp"
#include "transport/mailbox.hpp"
#include "transport/message.hpp"

namespace ccf::transport {

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Messages that reached a closed mailbox (receiver already torn down).
  std::uint64_t closed_box_drops = 0;
  /// Injected faults, when a FaultInjector is attached.
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_reordered = 0;
};

class Network {
 public:
  /// Registers a process id and returns its mailbox. Ids must be unique.
  std::shared_ptr<Mailbox> register_process(ProcId id);

  /// Looks up a mailbox; throws InvalidArgument for unknown ids.
  std::shared_ptr<Mailbox> mailbox(ProcId id) const;

  bool has_process(ProcId id) const;

  /// Stamps the per-sender sequence number and delivers into dst's mailbox.
  void send(Message m);

  /// Attaches a fault injector consulted on every subsequent send().
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  /// Closes every mailbox (wakes all blocked receivers). Held-back
  /// (reordered) messages are flushed first so nothing is lost silently.
  void shutdown();

  std::vector<ProcId> process_ids() const;
  NetworkStats stats() const;

 private:
  void deliver_counted(const std::shared_ptr<Mailbox>& box, Message m);

  mutable std::mutex mutex_;
  std::unordered_map<ProcId, std::shared_ptr<Mailbox>> mailboxes_;
  std::unordered_map<ProcId, std::uint64_t> next_seq_;
  std::shared_ptr<FaultInjector> faults_;
  /// One held-back message per destination: released after the next send
  /// to that destination (or at shutdown).
  std::unordered_map<ProcId, Message> held_;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> closed_box_drops_{0};
  std::atomic<std::uint64_t> faults_dropped_{0};
  std::atomic<std::uint64_t> faults_duplicated_{0};
  std::atomic<std::uint64_t> faults_reordered_{0};
};

}  // namespace ccf::transport
