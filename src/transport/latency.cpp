#include "transport/latency.hpp"

#include <chrono>
#include <cstring>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace ccf::transport {

FixedLatency::FixedLatency(double seconds) : seconds_(seconds) {
  CCF_REQUIRE(seconds >= 0.0, "negative latency " << seconds);
}

BandwidthLatency::BandwidthLatency(double latency_seconds, double bytes_per_second)
    : latency_(latency_seconds), bandwidth_(bytes_per_second) {
  CCF_REQUIRE(latency_seconds >= 0.0, "negative latency " << latency_seconds);
  CCF_REQUIRE(bytes_per_second > 0.0, "non-positive bandwidth " << bytes_per_second);
}

double BandwidthLatency::delay_seconds(std::size_t bytes) const {
  return latency_ + static_cast<double>(bytes) / bandwidth_;
}

std::shared_ptr<const LatencyModel> gige_model() {
  static const auto model = std::make_shared<const BandwidthLatency>(50e-6, 110e6);
  return model;
}

// LogP-style fits of the one-way frame cost measured by
// bench_transport_cal over payloads 64 B .. 512 KiB with the batched
// data plane (vectored writev flushes, block-read decode, coalesced
// doorbells) enabled — see BENCH_transport.json for the run the
// constants come from. tests/transport/latency_drift_test.cpp fails
// when these constants drift from the checked-in JSON.
std::shared_ptr<const LatencyModel> shm_calibrated_model() {
  static const auto model = std::make_shared<const BandwidthLatency>(3.6e-6, 11.1e9);
  return model;
}

std::shared_ptr<const LatencyModel> tcp_calibrated_model() {
  static const auto model = std::make_shared<const BandwidthLatency>(4.8e-6, 3.6e9);
  return model;
}

std::shared_ptr<const LatencyModel> zero_model() {
  static const auto model = std::make_shared<const ZeroLatency>();
  return model;
}

CopyCostModel::CopyCostModel(double per_op_seconds, double bytes_per_second)
    : per_op_seconds_(per_op_seconds), bytes_per_second_(bytes_per_second) {
  CCF_REQUIRE(per_op_seconds >= 0.0, "negative per-op cost");
  CCF_REQUIRE(bytes_per_second > 0.0, "non-positive copy bandwidth");
}

double CopyCostModel::cost_seconds(std::size_t bytes) const {
  return per_op_seconds_ + static_cast<double>(bytes) / bytes_per_second_;
}

const CopyCostModel& CopyCostModel::pentium4_preset() {
  static const CopyCostModel model(5e-6, 1.5e9);
  return model;
}

CopyCostModel CopyCostModel::measure_host(std::size_t probe_bytes) {
  CCF_REQUIRE(probe_bytes >= 4096, "probe size too small to measure meaningfully");
  std::vector<char> src(probe_bytes, 1);
  std::vector<char> dst(probe_bytes, 0);
  using clock = std::chrono::steady_clock;
  // Warm-up copy, then time the best of a few repetitions (least noisy).
  std::memcpy(dst.data(), src.data(), probe_bytes);
  double best_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = clock::now();
    std::memcpy(dst.data(), src.data(), probe_bytes);
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    best_seconds = std::min(best_seconds, s);
    // Defeat dead-copy elimination.
    if (dst[static_cast<std::size_t>(rep) % probe_bytes] == 42) src[0] = 2;
  }
  const double bandwidth =
      best_seconds > 0 ? static_cast<double>(probe_bytes) / best_seconds : 10e9;
  return CopyCostModel(1e-6, bandwidth);
}

}  // namespace ccf::transport
