// Message envelope for the in-memory transport.
//
// A Message is addressed (src, dst) and tagged like an MPI point-to-point
// message. Payloads are immutable, refcounted byte buffers exposed through
// PayloadView, a zero-copy (offset, length) window: a broadcast enqueues
// the same buffer into many mailboxes, a forwarder re-sends a received
// payload, and a sub-range (slice) travels on its own — all without
// copying a byte. Ownership is a type-erased shared_ptr, so a payload can
// alias any refcounted storage (a serialized frame, a pooled snapshot
// buffer) via the shared_ptr aliasing constructor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace ccf::transport {

/// Global process identifier within one simulated cluster/network.
using ProcId = std::int32_t;

/// Message tag; negative tags are reserved for framework-internal traffic.
using Tag = std::int32_t;

inline constexpr ProcId kAnyProc = -1;
inline constexpr Tag kAnyTag = -1;

/// Immutable, shared view over message bytes. Copying a view copies a
/// shared_ptr, never the bytes. A default-constructed view is "null"
/// (falsy) — distinct from a valid zero-length payload (truthy, empty).
class PayloadView {
 public:
  PayloadView() = default;

  /// Adopts `bytes`: single allocation, the view spans all of it.
  explicit PayloadView(std::vector<std::byte> bytes) {
    auto owned = std::make_shared<const std::vector<std::byte>>(std::move(bytes));
    data_ = owned->data();
    size_ = owned->size();
    owner_ = std::move(owned);
  }

  /// Aliases `[data, data + size)` inside memory kept alive by `owner`
  /// (shared_ptr aliasing: the view shares owner's refcount).
  PayloadView(std::shared_ptr<const void> owner, const std::byte* data, std::size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {
    CCF_REQUIRE(owner_ != nullptr, "payload view over unowned memory");
  }

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::byte* begin() const { return data_; }
  const std::byte* end() const { return data_ + size_; }

  /// Zero-copy sub-view sharing ownership of the same buffer.
  PayloadView slice(std::size_t offset, std::size_t length) const {
    CCF_REQUIRE(owner_ != nullptr, "slice of a null payload");
    CCF_REQUIRE(offset <= size_ && length <= size_ - offset,
                "payload slice [" << offset << ", +" << length << ") escapes " << size_
                                  << " bytes");
    return PayloadView(owner_, data_ + offset, length);
  }

  /// True for any valid payload, including an empty one.
  explicit operator bool() const { return owner_ != nullptr; }

 private:
  std::shared_ptr<const void> owner_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

using Payload = PayloadView;

/// Creates a payload by adopting `bytes` (no copy of the contents).
inline Payload make_payload(std::vector<std::byte> bytes) {
  return Payload(std::move(bytes));
}

inline Payload empty_payload() {
  static const Payload kEmpty{std::vector<std::byte>{}};
  return kEmpty;
}

struct Message {
  ProcId src = kAnyProc;
  ProcId dst = kAnyProc;
  Tag tag = 0;
  std::uint64_t seq = 0;  ///< per-sender sequence number, set by the network
  Payload payload;

  std::size_t size_bytes() const { return payload.size(); }
};

/// Receive-side matching predicate: src and tag each either exact or
/// wildcard. `src_count > 1` widens the source to the contiguous id range
/// [src, src + src_count) — a worker listening to all rep shards at once.
struct MatchSpec {
  ProcId src = kAnyProc;
  Tag tag = kAnyTag;
  ProcId src_count = 1;

  bool matches(const Message& m) const {
    const bool src_ok = src == kAnyProc || (m.src >= src && m.src < src + src_count);
    return src_ok && (tag == kAnyTag || tag == m.tag);
  }
};

}  // namespace ccf::transport
