// Message envelope for the in-memory transport.
//
// A Message is addressed (src, dst) and tagged like an MPI point-to-point
// message. Payloads are immutable, shared byte buffers so a broadcast can
// enqueue the same buffer into many mailboxes without copying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ccf::transport {

/// Global process identifier within one simulated cluster/network.
using ProcId = std::int32_t;

/// Message tag; negative tags are reserved for framework-internal traffic.
using Tag = std::int32_t;

inline constexpr ProcId kAnyProc = -1;
inline constexpr Tag kAnyTag = -1;

using Payload = std::shared_ptr<const std::vector<std::byte>>;

/// Creates a payload by copying `bytes`.
inline Payload make_payload(std::vector<std::byte> bytes) {
  return std::make_shared<const std::vector<std::byte>>(std::move(bytes));
}

inline Payload empty_payload() {
  static const Payload kEmpty = std::make_shared<const std::vector<std::byte>>();
  return kEmpty;
}

struct Message {
  ProcId src = kAnyProc;
  ProcId dst = kAnyProc;
  Tag tag = 0;
  std::uint64_t seq = 0;  ///< per-sender sequence number, set by the network
  Payload payload;

  std::size_t size_bytes() const { return payload ? payload->size() : 0; }
};

/// Receive-side matching predicate: src and tag each either exact or wildcard.
struct MatchSpec {
  ProcId src = kAnyProc;
  Tag tag = kAnyTag;

  bool matches(const Message& m) const {
    return (src == kAnyProc || src == m.src) && (tag == kAnyTag || tag == m.tag);
  }
};

}  // namespace ccf::transport
