#include "transport/fault.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ccf::transport {

namespace {

// One 64-bit hash per (seed, src, dst, index) identifies the message's
// position in the schedule; SplitMix64 expands it into the independent
// uniform draws for each fault kind.
std::uint64_t message_key(std::uint64_t seed, ProcId src, ProcId dst, std::uint64_t index) {
  util::SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
                              static_cast<std::uint32_t>(dst)));
  return sm.next() ^ index * 0x9e3779b97f4a7c15ULL;
}

double to_unit(std::uint64_t bits) { return static_cast<double>(bits >> 11) * 0x1.0p-53; }

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  CCF_REQUIRE(plan_.drop_prob >= 0 && plan_.drop_prob <= 1, "drop_prob out of [0,1]");
  CCF_REQUIRE(plan_.duplicate_prob >= 0 && plan_.duplicate_prob <= 1,
              "duplicate_prob out of [0,1]");
  CCF_REQUIRE(plan_.delay_prob >= 0 && plan_.delay_prob <= 1, "delay_prob out of [0,1]");
  CCF_REQUIRE(plan_.delay_min_seconds >= 0 && plan_.delay_max_seconds >= plan_.delay_min_seconds,
              "delay bounds must satisfy 0 <= min <= max");
}

FaultDecision FaultInjector::decide(ProcId src, ProcId dst, Tag tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (plan_.eligible && !plan_.eligible(src, dst, tag)) return {};
  const std::uint64_t index = link_counts_[{src, dst}]++;
  ++stats_.eligible;
  if (faults_injected_ >= plan_.max_faults) return {};

  util::SplitMix64 draws(message_key(plan_.seed, src, dst, index));
  FaultDecision d;
  if (to_unit(draws.next()) < plan_.drop_prob) {
    d.drop = true;
    ++stats_.dropped;
    ++faults_injected_;
    return d;
  }
  const double dup_draw = to_unit(draws.next());
  const double delay_draw = to_unit(draws.next());
  const double delay_span = to_unit(draws.next());
  if (dup_draw < plan_.duplicate_prob) {
    d.duplicate = true;
    ++stats_.duplicated;
    ++faults_injected_;
  }
  if (delay_draw < plan_.delay_prob && plan_.delay_max_seconds > 0) {
    d.extra_delay_seconds =
        plan_.delay_min_seconds +
        (plan_.delay_max_seconds - plan_.delay_min_seconds) * delay_span;
    ++stats_.delayed;
    ++faults_injected_;
  }
  return d;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ccf::transport
