#include "transport/network.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccf::transport {

std::shared_ptr<Mailbox> Network::register_process(ProcId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  CCF_REQUIRE(id >= 0, "process id must be non-negative, got " << id);
  CCF_REQUIRE(!mailboxes_.count(id), "process id " << id << " already registered");
  auto box = std::make_shared<Mailbox>();
  mailboxes_[id] = box;
  next_seq_[id] = 0;
  return box;
}

std::shared_ptr<Mailbox> Network::mailbox(ProcId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = mailboxes_.find(id);
  CCF_REQUIRE(it != mailboxes_.end(), "unknown process id " << id);
  return it->second;
}

bool Network::has_process(ProcId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mailboxes_.count(id) > 0;
}

void Network::send(Message m) {
  std::shared_ptr<Mailbox> box;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(m.dst);
    CCF_REQUIRE(it != mailboxes_.end(), "send to unknown process id " << m.dst);
    box = it->second;
    auto seq_it = next_seq_.find(m.src);
    if (seq_it != next_seq_.end()) m.seq = seq_it->second++;
  }
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(m.size_bytes(), std::memory_order_relaxed);
  box->deliver(std::move(m));
}

void Network::shutdown() {
  std::vector<std::shared_ptr<Mailbox>> boxes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    boxes.reserve(mailboxes_.size());
    for (auto& [id, box] : mailboxes_) boxes.push_back(box);
  }
  for (auto& box : boxes) box->close();
}

std::vector<ProcId> Network::process_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ProcId> ids;
  ids.reserve(mailboxes_.size());
  for (const auto& [id, box] : mailboxes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

NetworkStats Network::stats() const {
  NetworkStats s;
  s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ccf::transport
