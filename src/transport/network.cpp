#include "transport/network.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccf::transport {

std::shared_ptr<Mailbox> Network::register_process(ProcId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  CCF_REQUIRE(id >= 0, "process id must be non-negative, got " << id);
  CCF_REQUIRE(!mailboxes_.count(id), "process id " << id << " already registered");
  auto box = std::make_shared<Mailbox>();
  mailboxes_[id] = box;
  next_seq_[id] = 0;
  return box;
}

std::shared_ptr<Mailbox> Network::mailbox(ProcId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = mailboxes_.find(id);
  CCF_REQUIRE(it != mailboxes_.end(), "unknown process id " << id);
  return it->second;
}

bool Network::has_process(ProcId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mailboxes_.count(id) > 0;
}

void Network::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_ = std::move(injector);
}

void Network::deliver_counted(const std::shared_ptr<Mailbox>& box, Message m) {
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(m.size_bytes(), std::memory_order_relaxed);
  if (!box->deliver(std::move(m))) {
    closed_box_drops_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Network::send(Message m) {
  std::shared_ptr<Mailbox> box;
  std::shared_ptr<FaultInjector> faults;
  // A previously held-back message for this destination, released now.
  std::optional<Message> release;
  FaultDecision decision;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(m.dst);
    CCF_REQUIRE(it != mailboxes_.end(), "send to unknown process id " << m.dst);
    box = it->second;
    auto seq_it = next_seq_.find(m.src);
    if (seq_it != next_seq_.end()) m.seq = seq_it->second++;
    faults = faults_;
    if (faults) {
      decision = faults->decide(m.src, m.dst, m.tag);
      auto held_it = held_.find(m.dst);
      if (held_it != held_.end()) {
        release = std::move(held_it->second);
        held_.erase(held_it);
      }
      if (decision.extra_delay_seconds > 0 && !decision.drop && !release) {
        // Hold this message back; the next send to the same destination
        // (or shutdown) releases it — a delay realised as a reordering.
        faults_reordered_.fetch_add(1, std::memory_order_relaxed);
        held_.emplace(m.dst, std::move(m));
        return;
      }
    }
  }
  if (decision.drop) {
    faults_dropped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (decision.duplicate) {
      faults_duplicated_.fetch_add(1, std::memory_order_relaxed);
      deliver_counted(box, m);
    }
    deliver_counted(box, std::move(m));
  }
  if (release) deliver_counted(box, std::move(*release));
}

void Network::shutdown() {
  std::vector<std::shared_ptr<Mailbox>> boxes;
  std::vector<std::pair<std::shared_ptr<Mailbox>, Message>> flush;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    boxes.reserve(mailboxes_.size());
    for (auto& [id, box] : mailboxes_) boxes.push_back(box);
    for (auto& [dst, m] : held_) {
      auto it = mailboxes_.find(dst);
      if (it != mailboxes_.end()) flush.emplace_back(it->second, std::move(m));
    }
    held_.clear();
  }
  for (auto& [box, m] : flush) deliver_counted(box, std::move(m));
  for (auto& box : boxes) box->close();
}

std::vector<ProcId> Network::process_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ProcId> ids;
  ids.reserve(mailboxes_.size());
  for (const auto& [id, box] : mailboxes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

NetworkStats Network::stats() const {
  NetworkStats s;
  s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.closed_box_drops = closed_box_drops_.load(std::memory_order_relaxed);
  s.faults_dropped = faults_dropped_.load(std::memory_order_relaxed);
  s.faults_duplicated = faults_duplicated_.load(std::memory_order_relaxed);
  s.faults_reordered = faults_reordered_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ccf::transport
