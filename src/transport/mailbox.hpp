// Per-process inbox with MPI-style tagged matching.
//
// Many senders, one receiver. receive() matches on (src, tag) with
// wildcards, preserving arrival order among matching messages; non-matching
// messages stay queued (out-of-order consumption is the whole point of
// tagged receive). close() wakes blocked receivers with an exception so
// simulated processes can be torn down cleanly.
//
// Payloads are refcounted views (transport::PayloadView), so enqueueing,
// holding, and handing out messages never copies payload bytes — the same
// buffer a broadcast enqueued into many mailboxes is shared, not cloned.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "transport/message.hpp"
#include "util/check.hpp"

namespace ccf::transport {

/// Thrown from receive() when the mailbox was closed while waiting.
class MailboxClosed : public util::Error {
 public:
  MailboxClosed() : Error("mailbox closed") {}
};

class Mailbox {
 public:
  /// Enqueue; wakes one waiting receiver. Messages to a closed mailbox are
  /// dropped (the owning process has terminated); returns false and counts
  /// the drop so lost mail is never silent.
  bool deliver(Message m);

  /// Blocks until a message matching `spec` is available and removes it.
  /// Throws MailboxClosed if close() is called while waiting.
  Message receive(const MatchSpec& spec);

  /// Non-blocking variant; empty optional when nothing matches.
  std::optional<Message> try_receive(const MatchSpec& spec);

  /// Blocks until a match arrives or `deadline` passes (then nullopt).
  std::optional<Message> receive_until(const MatchSpec& spec,
                                       std::chrono::steady_clock::time_point deadline);

  /// True if a matching message is queued right now.
  bool probe(const MatchSpec& spec) const;

  std::size_t pending() const;

  void close();
  bool closed() const;

  /// Number of messages dropped because they arrived after close().
  std::uint64_t dropped() const;

 private:
  std::optional<Message> extract_locked(const MatchSpec& spec);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
  std::uint64_t dropped_ = 0;
};

}  // namespace ccf::transport
