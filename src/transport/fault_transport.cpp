#include "transport/fault_transport.hpp"

#include <optional>

#include "util/check.hpp"

namespace ccf::transport {

class FaultEndpoint final : public Endpoint {
 public:
  FaultEndpoint(FaultTransport& owner, std::shared_ptr<Endpoint> inner)
      : owner_(owner), inner_(std::move(inner)) {}

  ProcId id() const override { return inner_->id(); }
  Mailbox& inbox() override { return inner_->inbox(); }
  bool under_pressure() const override { return inner_->under_pressure(); }

  void send(Message m) override {
    FaultDecision decision;
    std::optional<FaultTransport::Held> release;
    std::optional<Message> dup_now;
    bool held_now = false;
    {
      std::lock_guard<std::mutex> lock(owner_.mutex_);
      decision = owner_.injector_->decide(m.src, m.dst, m.tag);
      auto held_it = owner_.held_.find(m.dst);
      if (held_it != owner_.held_.end()) {
        release = std::move(held_it->second);
        owner_.held_.erase(held_it);
      }
      if (decision.extra_delay_seconds > 0 && !decision.drop && !release) {
        // Hold this message back; the next send to the same destination
        // (or shutdown) releases it — a delay realised as a reordering.
        // If the draw also duplicated it, one copy (aliasing the same
        // payload) still goes out on time so no delivery is lost.
        if (decision.duplicate) dup_now = m;
        owner_.held_.emplace(
            m.dst, FaultTransport::Held{shared_from_this_endpoint(), std::move(m)});
        held_now = true;
      }
    }
    if (held_now) {
      if (dup_now) inner_->send(std::move(*dup_now));
      return;
    }
    if (!decision.drop) {
      if (decision.duplicate) inner_->send(m);
      inner_->send(std::move(m));
    }
    if (release) release->via->send(std::move(release->message));
  }

 private:
  /// The endpoint stored with a held message must keep the inner endpoint
  /// alive; the wrapper itself is not needed for the flush.
  std::shared_ptr<Endpoint> shared_from_this_endpoint() { return inner_; }

  FaultTransport& owner_;
  std::shared_ptr<Endpoint> inner_;
};

FaultTransport::FaultTransport(std::shared_ptr<Transport> inner,
                               std::shared_ptr<FaultInjector> injector)
    : inner_(std::move(inner)), injector_(std::move(injector)) {
  CCF_REQUIRE(inner_ != nullptr, "FaultTransport over a null transport");
  CCF_REQUIRE(injector_ != nullptr, "FaultTransport without an injector");
}

std::shared_ptr<Endpoint> FaultTransport::attach(ProcId id) {
  return std::make_shared<FaultEndpoint>(*this, inner_->attach(id));
}

void FaultTransport::shutdown() {
  std::unordered_map<ProcId, Held> flush;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    flush.swap(held_);
  }
  for (auto& [dst, held] : flush) held.via->send(std::move(held.message));
  inner_->shutdown();
}

}  // namespace ccf::transport
