#include "transport/fabric.hpp"

namespace ccf::transport {

namespace {

class FabricEndpoint final : public Endpoint {
 public:
  FabricEndpoint(ProcId id, Network& network, std::shared_ptr<Mailbox> box)
      : id_(id), network_(network), box_(std::move(box)) {}

  ProcId id() const override { return id_; }
  void send(Message m) override { network_.send(std::move(m)); }
  Mailbox& inbox() override { return *box_; }

 private:
  ProcId id_;
  Network& network_;
  std::shared_ptr<Mailbox> box_;
};

}  // namespace

FabricTransport::FabricTransport(const std::vector<ProcId>& members) {
  for (ProcId id : members) network_.register_process(id);
}

std::shared_ptr<Endpoint> FabricTransport::attach(ProcId id) {
  return std::make_shared<FabricEndpoint>(id, network_, network_.mailbox(id));
}

void FabricTransport::shutdown() { network_.shutdown(); }

TransportCounters FabricTransport::counters() const {
  const NetworkStats s = network_.stats();
  TransportCounters c;
  c.frames_sent = s.messages_sent;
  c.frames_received = s.messages_sent - s.closed_box_drops;
  c.bytes_framed = s.bytes_sent;
  return c;
}

}  // namespace ccf::transport
