// Deterministic, seeded fault injection for the message fabric.
//
// A FaultInjector sits between send() and delivery (both in the real-time
// Network and in the virtual-time scheduler) and decides, per message,
// whether to drop it, duplicate it, or delay it. Decisions are a pure
// function of (seed, src, dst, per-link message index), so a schedule is
// replayable: the same seed over the same per-link traffic produces the
// same faults regardless of thread interleaving. The chaos harness relies
// on this to rerun a failing schedule byte-for-byte.
//
// Eligibility is scoped by an optional predicate over (src, dst, tag) so a
// test can target control traffic while leaving bulk data alone, and a
// max_faults cap bounds total injected damage per run.
//
// A duplicated message re-delivers the same refcounted payload view: both
// deliveries alias one buffer, so duplication is O(1) regardless of
// payload size (and cannot diverge byte-wise between the two copies).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "transport/message.hpp"

namespace ccf::transport {

/// Replayable fault schedule. All probabilities are in [0, 1]; a message
/// is first tested for drop, then (if kept) for duplication, then for
/// extra delay — so one message can be both duplicated and delayed.
struct FaultPlan {
  std::uint64_t seed = 0;
  double drop_prob = 0;
  double duplicate_prob = 0;
  double delay_prob = 0;
  /// Extra delay drawn uniformly from [delay_min_seconds, delay_max_seconds].
  double delay_min_seconds = 0;
  double delay_max_seconds = 0;
  /// Restricts which messages may be faulted; null means all are eligible.
  /// Must be a pure function (called under the injector's lock).
  std::function<bool(ProcId src, ProcId dst, Tag tag)> eligible;
  /// Hard cap on the number of faulted messages (drops + dups + delays
  /// each count once); further messages pass through untouched.
  std::uint64_t max_faults = UINT64_MAX;
};

struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  double extra_delay_seconds = 0;

  bool faulted() const { return drop || duplicate || extra_delay_seconds > 0; }
};

struct FaultStats {
  std::uint64_t eligible = 0;   ///< messages the plan applied to
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Decides the fate of the next message on the (src, dst) link.
  FaultDecision decide(ProcId src, ProcId dst, Tag tag);

  FaultStats stats() const;
  const FaultPlan& plan() const { return plan_; }

 private:
  mutable std::mutex mutex_;
  FaultPlan plan_;
  FaultStats stats_;
  std::uint64_t faults_injected_ = 0;
  /// Per-link message index: the replay key together with the seed.
  std::map<std::pair<ProcId, ProcId>, std::uint64_t> link_counts_;
};

}  // namespace ccf::transport
