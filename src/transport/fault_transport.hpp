// FaultTransport: seeded fault injection as a decorator over ANY backend.
//
// Historically fault injection lived inside the in-memory Network; that
// made it a special case of one backend and left the real SHM+TCP path
// untestable under chaos. FaultTransport lifts the exact same semantics
// to the Transport seam:
//
//   * drop       — the message never reaches the inner transport
//   * duplicate  — delivered twice (both aliasing one payload buffer)
//   * delay      — held back until the next message to the same
//                  destination (the decorator has no clock, so a delay
//                  manifests as a reordering), flushed at shutdown
//
// Decisions come from the same seeded FaultInjector, keyed by the
// per-link message index, so a chaos schedule replays identically whether
// the inner transport is the lossless fabric or a live SHM+TCP cluster.
// In multi-process deployments each process wraps its own endpoint; the
// per-link decision streams are disjoint across senders, so a shared seed
// still yields one deterministic schedule.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "transport/fault.hpp"
#include "transport/transport.hpp"

namespace ccf::transport {

class FaultTransport final : public Transport {
 public:
  FaultTransport(std::shared_ptr<Transport> inner, std::shared_ptr<FaultInjector> injector);

  std::shared_ptr<Endpoint> attach(ProcId id) override;

  /// Flushes held-back (delayed) messages, then shuts down the inner
  /// transport — nothing is lost silently, matching the fabric.
  void shutdown() override;

  TransportCounters counters() const override { return inner_->counters(); }

  const FaultInjector& injector() const { return *injector_; }

 private:
  friend class FaultEndpoint;

  /// One held-back message per destination, released after the next send
  /// to that destination; the sending endpoint is kept so the flush rides
  /// the same inner path as the original send.
  struct Held {
    std::shared_ptr<Endpoint> via;
    Message message;
  };

  std::shared_ptr<Transport> inner_;
  std::shared_ptr<FaultInjector> injector_;
  std::mutex mutex_;
  std::unordered_map<ProcId, Held> held_;
  bool shut_down_ = false;
};

}  // namespace ccf::transport
