#include "transport/mailbox.hpp"

#include "util/check.hpp"

namespace ccf::transport {

bool Mailbox::deliver(Message m) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      ++dropped_;
      return false;
    }
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
  return true;
}

std::optional<Message> Mailbox::extract_locked(const MatchSpec& spec) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (spec.matches(*it)) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message Mailbox::receive(const MatchSpec& spec) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = extract_locked(spec)) return std::move(*m);
    if (closed_) throw MailboxClosed{};
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::receive_until(const MatchSpec& spec,
                                              std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = extract_locked(spec)) return m;
    if (closed_) throw MailboxClosed{};
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return extract_locked(spec);
    }
  }
}

std::optional<Message> Mailbox::try_receive(const MatchSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  return extract_locked(spec);
}

bool Mailbox::probe(const MatchSpec& spec) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& m : queue_) {
    if (spec.matches(m)) return true;
  }
  return false;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::uint64_t Mailbox::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

}  // namespace ccf::transport
