// In-memory Transport backend: the lossless fabric, as a Transport.
//
// Wraps the existing Network (one Mailbox per member, immediate ordered
// delivery) behind the Transport/Endpoint seam so the real-thread runtime
// can swap it for the real SHM+TCP backend without touching the protocol
// layer. Behavior is byte-for-byte the pre-seam Network: same seq
// stamping, same closed-box drop accounting, same shutdown semantics.
#pragma once

#include <memory>
#include <vector>

#include "transport/network.hpp"
#include "transport/transport.hpp"

namespace ccf::transport {

class FabricTransport final : public Transport {
 public:
  explicit FabricTransport(const std::vector<ProcId>& members);

  std::shared_ptr<Endpoint> attach(ProcId id) override;
  void shutdown() override;
  TransportCounters counters() const override;

  /// The underlying fabric (tests and stats probes).
  Network& network() { return network_; }

 private:
  Network network_;
};

}  // namespace ccf::transport
