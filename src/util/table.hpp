// Plain-text table and CSV emission for the benchmark harness.
//
// Benches print the same rows/series the paper's figures report; TableWriter
// produces aligned console tables and CsvWriter produces machine-readable
// side files when requested with --csv=<path>.
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

namespace ccf::util {

/// Builds an aligned fixed-column text table and streams it out.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column widths fitted to content; header underlined.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Convenience cell formatting.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::size_t v);
  static std::string fmt(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streaming CSV file writer. Quotes cells containing separators.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws InvalidArgument on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);
  void flush();

 private:
  std::ofstream out_;
};

}  // namespace ccf::util
