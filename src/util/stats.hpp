// Statistics helpers used by the benchmark harness and by the framework's
// internal accounting: streaming moments (Welford), percentile extraction,
// least-squares linear fit, and knee detection for the Figure-4 style
// "time decays until the optimal state" series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccf::util {

/// Streaming mean/variance/min/max over doubles (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;   ///< Sample variance (n-1 denominator); 0 if n < 2.
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation; `q` in [0,1]. Sorts a copy.
double percentile(std::vector<double> values, double q);

/// Least-squares fit y = a + b*x. Returns {a, b}; b = 0 when degenerate.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys);

/// Mean of values[first, last) — empty range yields 0.
double mean_of(const std::vector<double>& values, std::size_t first, std::size_t last);

/// Detects where a decaying series settles onto its final plateau.
///
/// Used to reproduce the paper's "iterations needed to reach the optimal
/// state" claim for Figure 4(c)/(d): the export-time series starts high
/// (every export buffered) and decays until only matched objects are
/// buffered. We define the knee as the first index i such that every
/// subsequent window of `window` samples has mean within
/// `plateau_tolerance` (relative) of the tail plateau (mean of the last
/// `window` samples). Returns the series size when no plateau is reached.
std::size_t settle_index(const std::vector<double>& series, std::size_t window,
                         double plateau_tolerance);

/// Simple fixed-width histogram over [lo, hi); values outside clamp to the
/// edge bins. Used by microbenches to show latency spread.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ccf::util
