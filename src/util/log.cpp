#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace ccf::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

std::mutex Log::mutex_;

void Log::set_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel Log::level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Log::write(LogLevel level, const std::string& who, const std::string& message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(stderr, "[%s] [%s] %s\n", level_name(level), who.c_str(), message.c_str());
}

}  // namespace ccf::util
