#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace ccf::util {

CliParser::CliParser(std::string program_name, std::string description)
    : program_name_(std::move(program_name)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& key, const std::string& default_value,
                           const std::string& help) {
  CCF_REQUIRE(!options_.count(key), "duplicate option --" << key);
  options_[key] = Option{default_value, help, /*is_flag=*/false};
}

void CliParser::add_flag(const std::string& key, const std::string& help) {
  CCF_REQUIRE(!options_.count(key), "duplicate option --" << key);
  options_[key] = Option{"false", help, /*is_flag=*/true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      std::string key = body;
      std::string value;
      bool has_value = false;
      if (auto eq = body.find('='); eq != std::string::npos) {
        key = body.substr(0, eq);
        value = body.substr(eq + 1);
        has_value = true;
      }
      auto it = options_.find(key);
      CCF_REQUIRE(it != options_.end(), "unknown option --" << key << "\n" << usage());
      if (it->second.is_flag) {
        CCF_REQUIRE(!has_value || value == "true" || value == "false",
                    "flag --" << key << " takes no value (or true/false)");
        values_[key] = has_value ? value : "true";
      } else {
        CCF_REQUIRE(has_value, "option --" << key << " requires =value");
        values_[key] = value;
      }
    } else {
      positional_.push_back(arg);
    }
  }
  return true;
}

std::string CliParser::get(const std::string& key) const {
  auto opt = options_.find(key);
  CCF_REQUIRE(opt != options_.end(), "option --" << key << " was never declared");
  auto val = values_.find(key);
  return val != values_.end() ? val->second : opt->second.default_value;
}

long long CliParser::get_int(const std::string& key) const {
  const std::string text = get(key);
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  CCF_REQUIRE(end && *end == '\0' && !text.empty(), "--" << key << "=" << text << " is not an integer");
  return v;
}

double CliParser::get_double(const std::string& key) const {
  const std::string text = get(key);
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  CCF_REQUIRE(end && *end == '\0' && !text.empty(), "--" << key << "=" << text << " is not a number");
  return v;
}

bool CliParser::get_bool(const std::string& key) const {
  const std::string text = get(key);
  CCF_REQUIRE(text == "true" || text == "false", "--" << key << "=" << text << " is not true/false");
  return text == "true";
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_name_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [key, opt] : options_) {
    os << "  --" << key;
    if (!opt.is_flag) os << "=<value> (default: " << opt.default_value << ")";
    os << "\n      " << opt.help << "\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

std::vector<long long> parse_int_list(const std::string& text) {
  std::vector<long long> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const long long v = std::strtoll(item.c_str(), &end, 10);
    CCF_REQUIRE(end && *end == '\0', "bad integer in list: '" << item << "'");
    out.push_back(v);
  }
  return out;
}

std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    CCF_REQUIRE(end && *end == '\0', "bad number in list: '" << item << "'");
    out.push_back(v);
  }
  return out;
}

}  // namespace ccf::util
