#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ccf::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  CCF_REQUIRE(!values.empty(), "percentile of empty vector");
  CCF_REQUIRE(q >= 0.0 && q <= 1.0, "quantile " << q << " outside [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  CCF_REQUIRE(xs.size() == ys.size(), "linear_fit size mismatch: " << xs.size() << " vs " << ys.size());
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-300) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  return fit;
}

double mean_of(const std::vector<double>& values, std::size_t first, std::size_t last) {
  last = std::min(last, values.size());
  if (first >= last) return 0.0;
  double s = 0.0;
  for (std::size_t i = first; i < last; ++i) s += values[i];
  return s / static_cast<double>(last - first);
}

std::size_t settle_index(const std::vector<double>& series, std::size_t window,
                         double plateau_tolerance) {
  if (series.size() < window || window == 0) return series.size();
  const double plateau = mean_of(series, series.size() - window, series.size());
  // Guard against a zero plateau: use an absolute epsilon scaled by the
  // series peak so relative tolerance stays meaningful.
  double peak = 0.0;
  for (double v : series) peak = std::max(peak, std::abs(v));
  const double band = std::max(std::abs(plateau) * plateau_tolerance, peak * 1e-9);

  // Walk backwards: find the last window whose mean escapes the band; the
  // settle point is just after it.
  std::size_t settle = 0;
  for (std::size_t start = 0; start + window <= series.size(); ++start) {
    const double m = mean_of(series, start, start + window);
    if (std::abs(m - plateau) > band) settle = start + 1;
  }
  return settle;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  CCF_REQUIRE(hi > lo, "histogram range [" << lo << "," << hi << ") is empty");
  CCF_REQUIRE(bins > 0, "histogram needs at least one bin");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  double idx = (x - lo_) / width_;
  std::size_t bin = 0;
  if (idx >= static_cast<double>(counts_.size())) {
    bin = counts_.size() - 1;
  } else if (idx > 0) {
    bin = static_cast<std::size_t>(idx);
  }
  counts_[bin] += 1;
  ++total_;
}

double Histogram::bin_low(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_high(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

}  // namespace ccf::util
