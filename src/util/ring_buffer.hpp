// Fixed-capacity ring buffer (single-threaded).
//
// Used for bounded trace capture and sliding-window statistics where
// allocation-free steady state matters.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace ccf::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : storage_(capacity) {
    CCF_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  }

  /// Appends, overwriting the oldest element when full.
  void push(T value) {
    storage_[head_] = std::move(value);
    head_ = (head_ + 1) % storage_.size();
    if (size_ < storage_.size()) ++size_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return storage_.size(); }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == storage_.size(); }

  /// Element `i` counted from the oldest retained entry (0 = oldest).
  const T& at(std::size_t i) const {
    CCF_REQUIRE(i < size_, "ring index " << i << " out of range (size " << size_ << ")");
    const std::size_t start = (head_ + storage_.size() - size_) % storage_.size();
    return storage_[(start + i) % storage_.size()];
  }

  const T& newest() const { return at(size_ - 1); }
  const T& oldest() const { return at(0); }

  void clear() {
    size_ = 0;
    head_ = 0;
  }

  /// Copies contents oldest-to-newest into a vector.
  std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
    return out;
  }

 private:
  std::vector<T> storage_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ccf::util
