// Deterministic pseudo-random number generation.
//
// SplitMix64 seeds Xoshiro256**; both are tiny, fast, and reproducible
// across platforms — important because the virtual-time experiments must
// produce identical event orders on every run.
#pragma once

#include <cstdint>

namespace ccf::util {

/// SplitMix64: used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: general-purpose generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // bias is negligible for our n << 2^64.
    return static_cast<std::uint64_t>((static_cast<unsigned __int128>(next()) * n) >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace ccf::util
