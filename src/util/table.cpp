#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace ccf::util {

TableWriter::TableWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CCF_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  CCF_REQUIRE(cells.size() == headers_.size(),
              "row has " << cells.size() << " cells, table has " << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TableWriter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TableWriter::fmt(std::size_t v) { return std::to_string(v); }
std::string TableWriter::fmt(long long v) { return std::to_string(v); }

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  CCF_REQUIRE(out_.is_open(), "cannot open CSV output file: " << path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string& cell = cells[i];
    const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
    if (quote) {
      out_ << '"';
      for (char ch : cell) {
        if (ch == '"') out_ << '"';
        out_ << ch;
      }
      out_ << '"';
    } else {
      out_ << cell;
    }
    if (i + 1 < cells.size()) out_ << ',';
  }
  out_ << '\n';
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace ccf::util
