#include "util/work.hpp"

#include <atomic>
#include <chrono>
#include <mutex>

namespace ccf::util {

namespace {
std::atomic<double> g_sink{0.0};
}

double spin_work(std::uint64_t iters) {
  double x = 1.000000001;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x = x * 1.0000001 + 1e-12;
    if (x > 2.0) x -= 1.0;
  }
  // Publish so the compiler cannot prove the loop dead.
  g_sink.store(x, std::memory_order_relaxed);
  return x;
}

double spin_iters_per_us() {
  static std::once_flag once;
  static double rate = 0.0;
  std::call_once(once, [] {
    using clock = std::chrono::steady_clock;
    // Warm up, then time a fixed batch.
    spin_work(100000);
    const std::uint64_t batch = 2000000;
    const auto t0 = clock::now();
    spin_work(batch);
    const auto t1 = clock::now();
    const double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    rate = us > 0 ? static_cast<double>(batch) / us : 1e3;
  });
  return rate;
}

void spin_for_us(double us) {
  if (us <= 0) return;
  spin_work(static_cast<std::uint64_t>(us * spin_iters_per_us()));
}

}  // namespace ccf::util
