// Calibrated synthetic CPU work.
//
// Real-time mode needs "computation" whose duration is controllable in
// microseconds without depending on sleep granularity: spin_work() runs a
// side-effect-resistant FLOP loop; calibrate() measures the machine's loop
// rate once so callers can convert microseconds to iterations.
#pragma once

#include <cstdint>

namespace ccf::util {

/// Runs `iters` iterations of a dependent floating-point chain and returns a
/// value that must be consumed (prevents the optimizer deleting the loop).
double spin_work(std::uint64_t iters);

/// Estimated spin_work iterations per microsecond on this machine.
/// First call calibrates (a few ms); subsequent calls are free.
double spin_iters_per_us();

/// Busy-spins for approximately `us` microseconds.
void spin_for_us(double us);

}  // namespace ccf::util
