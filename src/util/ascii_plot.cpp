#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdio>
#include <sstream>

namespace ccf::util {

namespace {

/// Bucket-averages `series` into exactly `width` columns (or fewer when
/// the series is shorter).
std::vector<double> resample(const std::vector<double>& series, std::size_t width) {
  if (series.empty() || series.size() <= width) return series;
  std::vector<double> out;
  out.reserve(width);
  for (std::size_t col = 0; col < width; ++col) {
    const std::size_t begin = col * series.size() / width;
    std::size_t end = (col + 1) * series.size() / width;
    end = std::max(end, begin + 1);
    double sum = 0;
    for (std::size_t i = begin; i < end && i < series.size(); ++i) sum += series[i];
    out.push_back(sum / static_cast<double>(std::min(end, series.size()) - begin));
  }
  return out;
}

std::string format_tick(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%9.3g", v);
  return buf;
}

std::string render(const std::vector<std::vector<double>>& layers, const char* marks,
                   const AsciiPlotOptions& options) {
  std::ostringstream os;
  if (!options.y_label.empty()) os << options.y_label << "\n";

  double lo = options.y_auto_min ? std::numeric_limits<double>::infinity() : options.y_min;
  double hi = -std::numeric_limits<double>::infinity();
  std::size_t longest = 0;
  for (const auto& layer : layers) {
    longest = std::max(longest, layer.size());
    for (double v : layer) {
      if (options.y_auto_min) lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (longest == 0) {
    os << "  (empty series)\n";
    return os.str();
  }
  if (!std::isfinite(lo)) lo = 0;
  if (!std::isfinite(hi)) hi = lo + 1;
  if (hi <= lo) hi = lo + 1;

  std::vector<std::vector<double>> cols;
  std::size_t width = 0;
  for (const auto& layer : layers) {
    cols.push_back(resample(layer, options.width));
    width = std::max(width, cols.back().size());
  }

  // Grid of cells, top row = max value.
  std::vector<std::string> grid(options.height, std::string(width, ' '));
  for (std::size_t layer = 0; layer < cols.size(); ++layer) {
    for (std::size_t c = 0; c < cols[layer].size(); ++c) {
      const double frac = (cols[layer][c] - lo) / (hi - lo);
      auto row = static_cast<std::size_t>(
          std::lround(frac * static_cast<double>(options.height - 1)));
      row = std::min(row, options.height - 1);
      char& cell = grid[options.height - 1 - row][c];
      cell = (cell == ' ' || cell == marks[layer]) ? marks[layer] : '#';
    }
  }

  for (std::size_t r = 0; r < options.height; ++r) {
    if (r == 0) {
      os << format_tick(hi) << " |";
    } else if (r + 1 == options.height) {
      os << format_tick(lo) << " |";
    } else {
      os << "          |";
    }
    os << grid[r] << "\n";
  }
  os << "          +" << std::string(width, '-') << "\n";
  if (!options.x_label.empty()) os << "           " << options.x_label << "\n";
  return os.str();
}

}  // namespace

std::string ascii_plot(const std::vector<double>& series, const AsciiPlotOptions& options) {
  return render({series}, "*", options);
}

std::string ascii_plot2(const std::vector<double>& primary, const std::vector<double>& secondary,
                        const AsciiPlotOptions& options) {
  return render({primary, secondary}, "*o", options);
}

}  // namespace ccf::util
