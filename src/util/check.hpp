// Error-handling primitives used across the framework.
//
// CCF_CHECK(cond, msg)   — internal invariant; throws ccf::util::InternalError.
// CCF_REQUIRE(cond, msg) — precondition on user-supplied input; throws
//                          ccf::util::InvalidArgument.
// Both accept a streamed message: CCF_CHECK(x > 0, "x=" << x).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ccf::util {

/// Base class for all framework exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A broken internal invariant (a bug in the framework).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Bad input from the caller (bad config file, bad region spec, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A violation of the framework's collective-operation contract (Property 1):
/// e.g. processes of one program answering MATCH and NO-MATCH for the same
/// request, or MATCH answers naming different timestamps.
class ProtocolViolation : public Error {
 public:
  explicit ProtocolViolation(const std::string& what) : Error(what) {}
};

/// A bounded retry loop exhausted its retry budget without an answer
/// (failure-tolerant mode only; see FrameworkOptions::retry_timeout_seconds).
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

}  // namespace ccf::util

#define CCF_THROW_IMPL(ExcType, expr_text, msg_stream)                     \
  do {                                                                     \
    std::ostringstream ccf_oss_;                                           \
    ccf_oss_ << "[" << __FILE__ << ":" << __LINE__ << "] " << (expr_text)  \
             << ": " << msg_stream; /* NOLINT */                           \
    throw ExcType(ccf_oss_.str());                                         \
  } while (0)

#define CCF_CHECK(cond, msg_stream)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream ccf_msg_;                                         \
      ccf_msg_ << msg_stream; /* NOLINT */                                 \
      CCF_THROW_IMPL(::ccf::util::InternalError, "CHECK failed: " #cond,   \
                     ccf_msg_.str());                                      \
    }                                                                      \
  } while (0)

#define CCF_REQUIRE(cond, msg_stream)                                      \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream ccf_msg_;                                         \
      ccf_msg_ << msg_stream; /* NOLINT */                                 \
      CCF_THROW_IMPL(::ccf::util::InvalidArgument,                         \
                     "REQUIRE failed: " #cond, ccf_msg_.str());            \
    }                                                                      \
  } while (0)
