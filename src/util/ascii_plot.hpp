// Terminal line plots for the benchmark harnesses: renders a series as an
// ASCII chart so the paper's figure shapes are visible without leaving the
// terminal (e.g. the Figure-4 export-time decay).
#pragma once

#include <string>
#include <vector>

namespace ccf::util {

struct AsciiPlotOptions {
  std::size_t width = 72;   ///< plot columns (series is resampled to fit)
  std::size_t height = 14;  ///< plot rows
  std::string y_label;      ///< printed above the axis
  std::string x_label;      ///< printed below the axis
  double y_min = 0;         ///< fixed lower bound (y_auto=false)
  bool y_auto_min = true;   ///< derive the lower bound from the data
};

/// Renders `series` (x = index) as a multi-line string. Empty series
/// renders an empty frame. Values are bucket-averaged to `width` columns.
std::string ascii_plot(const std::vector<double>& series, const AsciiPlotOptions& options = {});

/// Overlay of two series ('*' primary, 'o' secondary, '#' where both).
std::string ascii_plot2(const std::vector<double>& primary, const std::vector<double>& secondary,
                        const AsciiPlotOptions& options = {});

}  // namespace ccf::util
