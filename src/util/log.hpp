// Minimal thread-safe leveled logger.
//
// The framework logs through a single global sink so interleaved output from
// many simulated processes stays line-atomic. Level is settable at runtime
// (default: Warn, so tests and benchmarks stay quiet).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace ccf::util {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global logger; all methods are thread-safe.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Emit one line at `level` with a `[who]` prefix. No-op below threshold.
  static void write(LogLevel level, const std::string& who, const std::string& message);

  static bool enabled(LogLevel level) { return level >= Log::level(); }

 private:
  static std::mutex mutex_;
};

}  // namespace ccf::util

// Streamed logging macros: CCF_LOG_INFO("p3", "exported t=" << t).
#define CCF_LOG_IMPL(lvl, who, msg_stream)                                \
  do {                                                                    \
    if (::ccf::util::Log::enabled(lvl)) {                                 \
      std::ostringstream ccf_log_oss_;                                    \
      ccf_log_oss_ << msg_stream; /* NOLINT */                            \
      ::ccf::util::Log::write(lvl, (who), ccf_log_oss_.str());            \
    }                                                                     \
  } while (0)

#define CCF_LOG_TRACE(who, msg) CCF_LOG_IMPL(::ccf::util::LogLevel::Trace, who, msg)
#define CCF_LOG_DEBUG(who, msg) CCF_LOG_IMPL(::ccf::util::LogLevel::Debug, who, msg)
#define CCF_LOG_INFO(who, msg) CCF_LOG_IMPL(::ccf::util::LogLevel::Info, who, msg)
#define CCF_LOG_WARN(who, msg) CCF_LOG_IMPL(::ccf::util::LogLevel::Warn, who, msg)
#define CCF_LOG_ERROR(who, msg) CCF_LOG_IMPL(::ccf::util::LogLevel::Error, who, msg)
