// Tiny command-line option parser for the bench/example binaries.
//
// Accepts --key=value and --flag forms; positional arguments are collected
// in order. Unknown keys are an error so typos in sweep scripts fail fast.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ccf::util {

class CliParser {
 public:
  CliParser(std::string program_name, std::string description);

  /// Declare an option before parse(); `help` is shown by usage().
  void add_option(const std::string& key, const std::string& default_value, const std::string& help);
  void add_flag(const std::string& key, const std::string& help);

  /// Parses argv. Returns false (after printing usage) if --help was given.
  /// Throws InvalidArgument on unknown keys or malformed input.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& key) const;
  long long get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;  ///< for flags and "true"/"false" options
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string program_name_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Splits "4,8,16,32" into integers; used for sweep parameters.
std::vector<long long> parse_int_list(const std::string& text);
std::vector<double> parse_double_list(const std::string& text);

}  // namespace ccf::util
