// MPI-style communicator and collective operations over ProcessContext.
//
// A Communicator names an ordered group of cluster processes; the calling
// process must be a member and derives its rank from its position. All
// collective calls must be made by every member in the same order (the
// same SPMD contract as MPI) — each call consumes one slot of the
// communicator's operation sequence, which is encoded into message tags so
// back-to-back collectives can never cross-match even if the transport
// reorders differently sized messages.
//
// Tree-based algorithms (binomial broadcast/reduce/barrier) keep the
// collectives O(log P) in message rounds, matching the paper's assumption
// that collectives are cheap relative to data transfers.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "runtime/process_context.hpp"
#include "util/check.hpp"

namespace ccf::collectives {

using runtime::MatchSpec;
using runtime::Message;
using runtime::Payload;
using runtime::ProcessContext;
using runtime::ProcId;
using runtime::Tag;

/// Tag space layout: collectives own tags >= kCollectiveTagBase; the
/// coupling framework and applications use smaller tags.
inline constexpr Tag kCollectiveTagBase = 1 << 24;

class Communicator {
 public:
  /// `members` lists the global process ids in rank order; `ctx.id()` must
  /// appear exactly once. `color` separates concurrent communicators that
  /// share processes (like MPI communicator contexts).
  Communicator(ProcessContext& ctx, std::vector<ProcId> members, int color = 0);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }
  ProcId proc_at(int r) const;
  const std::vector<ProcId>& members() const { return members_; }
  ProcessContext& ctx() { return ctx_; }

  // -- point-to-point by rank (not sequence-numbered; caller picks tags) --
  template <typename T>
  void send_to(int dst_rank, Tag tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    ctx_.send(proc_at(dst_rank), tag, bytes_of(data.data(), data.size() * sizeof(T)));
  }

  template <typename T>
  std::vector<T> recv_from(int src_rank, Tag tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = ctx_.recv(MatchSpec{proc_at(src_rank), tag});
    return typed_of<T>(m.payload);
  }

  // -- collectives ---------------------------------------------------------

  /// Synchronizes all members (binomial gather + release tree).
  void barrier();

  /// Replicates root's `data` to every member (binomial tree).
  template <typename T>
  void broadcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf = raw_of(data.data(), data.size() * sizeof(T));
    bcast_bytes(buf, root);
    data = from_raw<T>(buf);
  }

  /// Concatenates members' buffers in rank order at root; other ranks get
  /// an empty result. Variable per-rank sizes are allowed (MPI_Gatherv).
  template <typename T>
  std::vector<T> gather(const std::vector<T>& local, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto parts = gather_bytes(raw_of(local.data(), local.size() * sizeof(T)), root);
    std::vector<T> out;
    for (const auto& part : parts) {
      auto typed = from_raw<T>(part);
      out.insert(out.end(), typed.begin(), typed.end());
    }
    return out;
  }

  /// gather() + broadcast of the concatenation to all members.
  template <typename T>
  std::vector<T> all_gather(const std::vector<T>& local) {
    std::vector<T> out = gather(local, 0);
    broadcast(out, 0);
    return out;
  }

  /// Root splits `all` into size() consecutive chunks of `chunk` elements;
  /// each member receives its rank's chunk.
  template <typename T>
  std::vector<T> scatter(const std::vector<T>& all, std::size_t chunk, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (rank_ == root) {
      CCF_REQUIRE(all.size() == chunk * static_cast<std::size_t>(size()),
                  "scatter size " << all.size() << " != " << chunk << " x " << size());
    }
    std::vector<std::byte> raw =
        rank_ == root ? raw_of(all.data(), all.size() * sizeof(T)) : std::vector<std::byte>{};
    auto mine = scatter_bytes(raw, chunk * sizeof(T), root);
    return from_raw<T>(mine);
  }

  /// Element-wise reduction into root's `data`; other ranks' data is
  /// unchanged. All members must pass equal-length vectors.
  template <typename T, typename Op>
  void reduce(std::vector<T>& data, int root, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto combine = [&op](void* inout, const void* in, std::size_t count) {
      T* a = static_cast<T*>(inout);
      const T* b = static_cast<const T*>(in);
      for (std::size_t i = 0; i < count; ++i) a[i] = op(a[i], b[i]);
    };
    std::vector<std::byte> buf = raw_of(data.data(), data.size() * sizeof(T));
    reduce_bytes(buf, sizeof(T), root, combine);
    if (rank_ == root) data = from_raw<T>(buf);
  }

  /// reduce() + broadcast: every member ends with the reduction.
  template <typename T, typename Op>
  void all_reduce(std::vector<T>& data, Op op) {
    reduce(data, 0, op);
    broadcast(data, 0);
  }

  /// Scalar convenience form of all_reduce.
  template <typename T, typename Op>
  T all_reduce_one(T value, Op op) {
    std::vector<T> v{value};
    all_reduce(v, op);
    return v[0];
  }

  /// Inclusive prefix reduction in rank order (linear chain).
  template <typename T, typename Op>
  void scan(std::vector<T>& data, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Tag tag = next_tag(OpCode::Scan);
    if (rank_ > 0) {
      Message m = ctx_.recv(MatchSpec{proc_at(rank_ - 1), tag});
      auto prev = typed_of<T>(m.payload);
      CCF_CHECK(prev.size() == data.size(), "scan length mismatch");
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = op(prev[i], data[i]);
    }
    if (rank_ + 1 < size()) {
      ctx_.send(proc_at(rank_ + 1), tag, bytes_of(data.data(), data.size() * sizeof(T)));
    }
  }

  /// Splits the communicator into disjoint sub-communicators
  /// (MPI_Comm_split): members passing the same `color` form a new group,
  /// ordered by (key, old rank). `tag_color` selects the new
  /// communicator's tag space and must be unique among communicators this
  /// process uses concurrently; pass a distinct small integer per split.
  Communicator split(int color, int key, int tag_color);

  /// Exclusive prefix reduction: rank r ends with op-fold of ranks < r;
  /// rank 0 gets `init` (MPI_Exscan with a defined rank-0 value).
  template <typename T, typename Op>
  void exclusive_scan(std::vector<T>& data, const T& init, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Tag tag = next_tag(OpCode::Scan);
    std::vector<T> carry(data.size(), init);
    if (rank_ > 0) {
      Message m = ctx_.recv(MatchSpec{proc_at(rank_ - 1), tag});
      carry = typed_of<T>(m.payload);
      CCF_CHECK(carry.size() == data.size(), "exscan length mismatch");
    }
    if (rank_ + 1 < size()) {
      std::vector<T> forward(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) forward[i] = op(carry[i], data[i]);
      ctx_.send(proc_at(rank_ + 1), tag, bytes_of(forward.data(), forward.size() * sizeof(T)));
    }
    data = std::move(carry);
  }

  /// Element-wise reduction of equal-length vectors followed by a scatter
  /// of consecutive `chunk`-element pieces: rank r returns elements
  /// [r*chunk, (r+1)*chunk) of the global reduction (MPI_Reduce_scatter
  /// with equal counts).
  template <typename T, typename Op>
  std::vector<T> reduce_scatter(const std::vector<T>& data, std::size_t chunk, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    CCF_REQUIRE(data.size() == chunk * static_cast<std::size_t>(size()),
                "reduce_scatter size " << data.size() << " != chunk " << chunk << " x "
                                       << size());
    std::vector<T> reduced = data;
    reduce(reduced, 0, op);
    return scatter(reduced, chunk, 0);
  }

  /// Personalized all-to-all: sendbufs[r] goes to rank r; returns the
  /// buffers received from each rank (recv[r] came from rank r).
  template <typename T>
  std::vector<std::vector<T>> all_to_all(const std::vector<std::vector<T>>& sendbufs) {
    static_assert(std::is_trivially_copyable_v<T>);
    CCF_REQUIRE(sendbufs.size() == static_cast<std::size_t>(size()),
                "all_to_all needs one send buffer per rank");
    const Tag tag = next_tag(OpCode::AllToAll);
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      ctx_.send(proc_at(r), tag, bytes_of(sendbufs[static_cast<std::size_t>(r)].data(),
                                          sendbufs[static_cast<std::size_t>(r)].size() * sizeof(T)));
    }
    std::vector<std::vector<T>> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank_)] = sendbufs[static_cast<std::size_t>(rank_)];
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      Message m = ctx_.recv(MatchSpec{proc_at(r), tag});
      out[static_cast<std::size_t>(r)] = typed_of<T>(m.payload);
    }
    return out;
  }

 private:
  enum class OpCode : std::uint8_t {
    Barrier = 1,
    Bcast,
    Gather,
    Scatter,
    Reduce,
    Scan,
    AllToAll,
  };

  /// Allocates the tag for the next collective call. All members call
  /// collectives in the same order, so their counters agree.
  Tag next_tag(OpCode op);

  // Byte-level implementations (in communicator.cpp).
  void bcast_bytes(std::vector<std::byte>& buf, int root);
  std::vector<std::vector<std::byte>> gather_bytes(std::vector<std::byte> local, int root);
  std::vector<std::byte> scatter_bytes(const std::vector<std::byte>& all, std::size_t chunk_bytes,
                                       int root);
  using CombineFn = std::function<void(void* inout, const void* in, std::size_t count)>;
  void reduce_bytes(std::vector<std::byte>& buf, std::size_t elem_size, int root,
                    const CombineFn& combine);

  // Payload helpers.
  static Payload bytes_of(const void* data, std::size_t bytes);
  static std::vector<std::byte> raw_of(const void* data, std::size_t bytes);

  template <typename T>
  static std::vector<T> typed_of(const Payload& p) {
    CCF_CHECK(p && p.size() % sizeof(T) == 0, "payload size not a multiple of element size");
    std::vector<T> out(p.size() / sizeof(T));
    if (!p.empty()) std::memcpy(out.data(), p.data(), p.size());
    return out;
  }

  template <typename T>
  static std::vector<T> from_raw(const std::vector<std::byte>& raw) {
    CCF_CHECK(raw.size() % sizeof(T) == 0, "byte buffer size not a multiple of element size");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  ProcessContext& ctx_;
  std::vector<ProcId> members_;
  int rank_ = -1;
  int color_ = 0;
  std::uint32_t seq_ = 0;
};

}  // namespace ccf::collectives
