#include "collectives/communicator.hpp"

#include <algorithm>

namespace ccf::collectives {

Communicator::Communicator(ProcessContext& ctx, std::vector<ProcId> members, int color)
    : ctx_(ctx), members_(std::move(members)), color_(color) {
  CCF_REQUIRE(!members_.empty(), "communicator needs at least one member");
  CCF_REQUIRE(color >= 0 && color < 128, "communicator color " << color << " outside [0,128)");
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == ctx_.id()) {
      CCF_REQUIRE(rank_ == -1, "process " << ctx_.id() << " appears twice in communicator");
      rank_ = static_cast<int>(i);
    }
  }
  CCF_REQUIRE(rank_ >= 0, "process " << ctx_.id() << " is not a member of this communicator");
}

ProcId Communicator::proc_at(int r) const {
  CCF_REQUIRE(r >= 0 && r < size(), "rank " << r << " outside [0," << size() << ")");
  return members_[static_cast<std::size_t>(r)];
}

Tag Communicator::next_tag(OpCode op) {
  const std::uint32_t seq = seq_++;
  const auto tag = static_cast<Tag>(
      static_cast<std::uint32_t>(kCollectiveTagBase) +
      (static_cast<std::uint32_t>(color_) << 17) + ((seq & 0x1FFFu) << 4) +
      static_cast<std::uint32_t>(op));
  return tag;
}

Payload Communicator::bytes_of(const void* data, std::size_t bytes) {
  if (bytes == 0) return transport::empty_payload();
  std::vector<std::byte> buf(bytes);
  std::memcpy(buf.data(), data, bytes);
  return transport::make_payload(std::move(buf));
}

std::vector<std::byte> Communicator::raw_of(const void* data, std::size_t bytes) {
  std::vector<std::byte> buf(bytes);
  if (bytes > 0) std::memcpy(buf.data(), data, bytes);
  return buf;
}

namespace {
/// Rank relative to the tree root, wrapping around the group.
int vrank_of(int rank, int root, int size) { return (rank - root + size) % size; }
int real_rank(int vrank, int root, int size) { return (vrank + root) % size; }

struct SplitEntry {
  std::int32_t color;
  std::int32_t key;
  std::int32_t old_rank;
  ProcId id;
};
}  // namespace

Communicator Communicator::split(int color, int key, int tag_color) {
  // Gather every member's (color, key) so all members of a sub-group
  // derive the identical membership list.
  std::vector<SplitEntry> mine{SplitEntry{color, key, rank_, ctx_.id()}};
  std::vector<SplitEntry> all = all_gather(mine);
  CCF_CHECK(all.size() == static_cast<std::size_t>(size()), "split gather size mismatch");

  std::vector<SplitEntry> group;
  for (const auto& e : all) {
    if (e.color == color) group.push_back(e);
  }
  std::sort(group.begin(), group.end(), [](const SplitEntry& a, const SplitEntry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.old_rank < b.old_rank;
  });
  std::vector<ProcId> members;
  members.reserve(group.size());
  for (const auto& e : group) members.push_back(e.id);
  return Communicator(ctx_, std::move(members), tag_color);
}

void Communicator::bcast_bytes(std::vector<std::byte>& buf, int root) {
  CCF_REQUIRE(root >= 0 && root < size(), "broadcast root " << root << " outside group");
  const Tag tag = next_tag(OpCode::Bcast);
  const int n = size();
  if (n == 1) return;
  const int vrank = vrank_of(rank_, root, n);

  // Binomial tree: receive from the parent at our lowest set bit, then
  // forward down the remaining subtrees (MPICH-style).
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int src = real_rank(vrank - mask, root, n);
      Message m = ctx_.recv(MatchSpec{proc_at(src), tag});
      buf.assign(m.payload.begin(), m.payload.end());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int dst = real_rank(vrank + mask, root, n);
      ctx_.send(proc_at(dst), tag, bytes_of(buf.data(), buf.size()));
    }
    mask >>= 1;
  }
}

std::vector<std::vector<std::byte>> Communicator::gather_bytes(std::vector<std::byte> local,
                                                               int root) {
  CCF_REQUIRE(root >= 0 && root < size(), "gather root " << root << " outside group");
  const Tag tag = next_tag(OpCode::Gather);
  const int n = size();
  std::vector<std::vector<std::byte>> parts;
  if (rank_ == root) {
    parts.resize(static_cast<std::size_t>(n));
    parts[static_cast<std::size_t>(root)] = std::move(local);
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      Message m = ctx_.recv(MatchSpec{proc_at(r), tag});
      parts[static_cast<std::size_t>(r)].assign(m.payload.begin(), m.payload.end());
    }
  } else {
    ctx_.send(proc_at(root), tag, bytes_of(local.data(), local.size()));
  }
  return parts;
}

std::vector<std::byte> Communicator::scatter_bytes(const std::vector<std::byte>& all,
                                                   std::size_t chunk_bytes, int root) {
  CCF_REQUIRE(root >= 0 && root < size(), "scatter root " << root << " outside group");
  const Tag tag = next_tag(OpCode::Scatter);
  const int n = size();
  if (rank_ == root) {
    CCF_REQUIRE(all.size() == chunk_bytes * static_cast<std::size_t>(n),
                "scatter buffer size " << all.size() << " != chunk " << chunk_bytes << " x " << n);
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      ctx_.send(proc_at(r), tag,
                bytes_of(all.data() + chunk_bytes * static_cast<std::size_t>(r), chunk_bytes));
    }
    return {all.begin() + static_cast<std::ptrdiff_t>(chunk_bytes * static_cast<std::size_t>(root)),
            all.begin() + static_cast<std::ptrdiff_t>(chunk_bytes * static_cast<std::size_t>(root + 1))};
  }
  Message m = ctx_.recv(MatchSpec{proc_at(root), tag});
  CCF_CHECK(m.payload.size() == chunk_bytes, "scatter chunk size mismatch");
  return {m.payload.begin(), m.payload.end()};
}

void Communicator::reduce_bytes(std::vector<std::byte>& buf, std::size_t elem_size, int root,
                                const CombineFn& combine) {
  CCF_REQUIRE(root >= 0 && root < size(), "reduce root " << root << " outside group");
  CCF_REQUIRE(elem_size > 0 && buf.size() % elem_size == 0,
              "reduce buffer not a whole number of elements");
  const Tag tag = next_tag(OpCode::Reduce);
  const int n = size();
  if (n == 1) return;
  const int vrank = vrank_of(rank_, root, n);
  const std::size_t count = buf.size() / elem_size;

  // Binomial tree reduction: even vranks absorb their |mask partner, odd
  // vranks ship their partial result to the parent and leave.
  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) == 0) {
      const int partner_v = vrank | mask;
      if (partner_v < n) {
        const int partner = real_rank(partner_v, root, n);
        Message m = ctx_.recv(MatchSpec{proc_at(partner), tag});
        CCF_CHECK(m.payload.size() == buf.size(),
                  "reduce contribution size mismatch from rank " << partner);
        combine(buf.data(), m.payload.data(), count);
      }
    } else {
      const int parent = real_rank(vrank & ~mask, root, n);
      ctx_.send(proc_at(parent), tag, bytes_of(buf.data(), buf.size()));
      break;
    }
    mask <<= 1;
  }
}

void Communicator::barrier() {
  // Reduce an empty token to rank 0, then broadcast the release. Two
  // phases ensure nobody exits before everyone arrived.
  const int n = size();
  if (n == 1) {
    next_tag(OpCode::Barrier);  // keep sequence counters aligned across sizes
    return;
  }
  const Tag tag = next_tag(OpCode::Barrier);
  const int vrank = rank_;  // root 0
  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) == 0) {
      const int partner = vrank | mask;
      if (partner < n) (void)ctx_.recv(MatchSpec{proc_at(partner), tag});
    } else {
      ctx_.send(proc_at(vrank & ~mask), tag, transport::empty_payload());
      break;
    }
    mask <<= 1;
  }
  // Release phase reuses the broadcast tree with a fresh tag.
  std::vector<std::byte> token;
  bcast_bytes(token, 0);
}

}  // namespace ccf::collectives
