// A three-component pipeline in the style of the Sun-to-Earth space
// weather simulations that motivate the paper's framework (§1, [7]):
//
//   solarwind (2 procs, finest cadence)
//       | REGL tol 0.05        driving plasma flux
//       v
//   magnetosphere (4 procs, heat solver, medium cadence, pipelined imports)
//       | REGL tol 0.5         field energy density
//       v
//   ionosphere (3 procs, wave solver, coarsest cadence)
//
// Each component runs its own time scale and numerical model; the
// framework's approximate matching absorbs the cadence mismatches and the
// middle component overlaps its solves with the next import via the
// non-blocking import API.
//
// Usage: ./build/examples/space_weather [--grid=48] [--steps=12] [--report-csv=path]
#include <cstdio>
#include <iostream>

#include "collectives/communicator.hpp"
#include "collectives/reduce_ops.hpp"
#include "core/report.hpp"
#include "core/system.hpp"
#include "sim/forcing.hpp"
#include "sim/heat2d.hpp"
#include "sim/wave2d.hpp"
#include "util/cli.hpp"

using namespace ccf;
using core::CouplingRuntime;
using dist::BlockDecomposition;
using dist::DistArray2D;
using dist::Index;

int main(int argc, char** argv) {
  util::CliParser cli("space_weather",
                      "Three-component multi-physics pipeline (solar wind -> "
                      "magnetosphere -> ionosphere)");
  cli.add_option("grid", "48", "global grid size");
  cli.add_option("steps", "12", "ionosphere (coarsest) steps");
  cli.add_option("report-csv", "", "optional CSV stats output path");
  if (!cli.parse(argc, argv)) return 0;

  const auto grid = static_cast<Index>(cli.get_int("grid"));
  const int coarse_steps = static_cast<int>(cli.get_int("steps"));
  const int mid_per_coarse = 5;   // magnetosphere steps per ionosphere step
  const int fine_per_mid = 4;     // solar-wind exports per magnetosphere step
  const double mid_dt = 0.1;
  const double fine_dt = mid_dt / fine_per_mid;
  const double coarse_dt = mid_dt * mid_per_coarse;

  core::Config config;
  config.add_program(core::ProgramSpec{"solarwind", "c0", "/bin/sw", 2, {}});
  config.add_program(core::ProgramSpec{"magnetosphere", "c1", "/bin/mag", 4, {}});
  config.add_program(core::ProgramSpec{"ionosphere", "c2", "/bin/iono", 3, {}});
  config.add_connection(core::ConnectionSpec{"solarwind", "flux", "magnetosphere", "flux",
                                             core::MatchPolicy::REGL, 2 * fine_dt});
  config.add_connection(core::ConnectionSpec{"magnetosphere", "energy", "ionosphere", "energy",
                                             core::MatchPolicy::REGL, mid_dt});

  core::CoupledSystem system(config, runtime::ClusterOptions{}, core::FrameworkOptions{});
  const auto sw_layout = BlockDecomposition::make_grid(grid, grid, 2);
  const auto mag_layout = BlockDecomposition::make_grid(grid, grid, 4);
  const auto iono_layout = BlockDecomposition::make_grid(grid, grid, 3);

  const int total_mid_steps = coarse_steps * mid_per_coarse;
  const int total_fine_steps = total_mid_steps * fine_per_mid;

  // --- solar wind: analytic driver, finest cadence --------------------------
  system.set_program_body("solarwind", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("flux", sw_layout);
    rt.commit();
    sim::ForcingField flux(sw_layout, rt.rank());
    for (int k = 1; k <= total_fine_steps; ++k) {
      const double t = k * fine_dt;
      flux.fill(t * 40.0);  // faster orbital motion for visible dynamics
      ctx.compute(2e-5);
      rt.export_region("flux", t, flux.field());
    }
    rt.finalize();
  });

  // --- magnetosphere: heat solver driven by the flux, pipelined imports -----
  system.set_program_body("magnetosphere", [&](CouplingRuntime& rt,
                                               runtime::ProcessContext& ctx) {
    rt.define_import_region("flux", mag_layout);
    rt.define_export_region("energy", mag_layout);
    rt.commit();
    const auto peers = system.layout().program("magnetosphere").proc_ids();
    sim::HeatSolver2D solver(mag_layout, rt.rank(), peers, /*alpha=*/0.2, mid_dt);
    DistArray2D<double> flux(mag_layout, rt.rank());
    DistArray2D<double> energy(mag_layout, rt.rank());
    // Pipeline: keep one import in flight ahead of the solve.
    auto ticket = rt.import_request("flux", mid_dt);
    for (int k = 1; k <= total_mid_steps; ++k) {
      const double t = k * mid_dt;
      CCF_CHECK(rt.import_wait(ticket, flux).ok(), "flux import failed at t=" << t);
      if (k < total_mid_steps) ticket = rt.import_request("flux", (k + 1) * mid_dt);
      solver.step(ctx, flux);
      ctx.compute(5e-5);
      energy.fill([&](Index r, Index c) {
        const double u = solver.u().at(r, c);
        return u * u;  // field energy density
      });
      rt.export_region("energy", t, energy);
    }
    rt.finalize();
  });

  // --- ionosphere: wave solver forced by the energy density, coarsest -------
  std::vector<double> iono_energy;
  system.set_program_body("ionosphere", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("energy", iono_layout);
    rt.commit();
    const auto peers = system.layout().program("ionosphere").proc_ids();
    sim::WaveSolver2D solver(iono_layout, rt.rank(), peers, coarse_dt);
    DistArray2D<double> forcing(iono_layout, rt.rank());
    collectives::Communicator comm(ctx, peers);
    for (int k = 1; k <= coarse_steps; ++k) {
      const double t = k * coarse_dt;
      const auto st = rt.import_region("energy", t, forcing);
      CCF_CHECK(st.ok(), "energy import failed at t=" << t);
      solver.step(ctx, forcing);
      ctx.compute(2e-4);
      const double e = comm.all_reduce_one(solver.local_energy(), collectives::Sum{});
      if (rt.rank() == 0) iono_energy.push_back(e);
    }
    rt.finalize();
  });

  system.run();

  std::printf("== space-weather pipeline ==\n");
  std::printf("grid %lldx%lld; cadences: solarwind dt=%.3f, magnetosphere dt=%.2f, "
              "ionosphere dt=%.2f\n\n",
              static_cast<long long>(grid), static_cast<long long>(grid), fine_dt, mid_dt,
              coarse_dt);
  std::printf("ionosphere response energy per coarse step:\n ");
  for (double e : iono_energy) std::printf(" %.3e", e);
  std::printf("\n\n");
  core::print_run_report(system, std::cout);

  if (!cli.get("report-csv").empty()) {
    core::write_run_report_csv(system, cli.get("report-csv"));
    std::printf("stats CSV written to %s\n", cli.get("report-csv").c_str());
  }
  return 0;
}
