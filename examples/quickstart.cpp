// Quickstart: the smallest complete coupled-simulation pair.
//
// Two independently written programs — "producer" exporting a 2-D field
// and "consumer" importing it — are coupled purely through the framework
// configuration: neither program names the other. The producer exports 50
// versions; the consumer asks for every tenth timestamp under REGL
// approximate matching and receives the closest earlier version.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/system.hpp"

using namespace ccf;
using core::CouplingRuntime;
using dist::BlockDecomposition;
using dist::DistArray2D;

int main() {
  // 1. The framework-level configuration (normally a file, Figure 2 in the
  //    paper): programs with process counts, then connections between
  //    exported and imported regions with a match policy and tolerance.
  core::Config config;
  config.add_program(core::ProgramSpec{"producer", "localhost", "./producer", 2, {}});
  config.add_program(core::ProgramSpec{"consumer", "localhost", "./consumer", 3, {}});
  config.add_connection(
      core::ConnectionSpec{"producer", "field", "consumer", "field", core::MatchPolicy::REGL,
                           /*tolerance=*/1.0});

  // 2. Assemble the coupled system; virtual-time mode makes the run
  //    deterministic (use RealThreads for wall-clock execution).
  core::CoupledSystem system(config, runtime::ClusterOptions{}, core::FrameworkOptions{});

  // 3. The producer: an SPMD program on 2 processes. It defines its region
  //    once and exports whenever it has a new version — it neither knows
  //    nor cares who (if anyone) consumes the data.
  const BlockDecomposition producer_layout = BlockDecomposition::make_grid(32, 32, 2);
  system.set_program_body("producer", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("field", producer_layout);
    rt.commit();
    DistArray2D<double> field(producer_layout, rt.rank());
    for (int step = 1; step <= 50; ++step) {
      const double t = 0.1 * step;
      ctx.compute(1e-4);  // the simulation work for this step
      field.fill([&](dist::Index r, dist::Index c) {
        return t + 0.001 * static_cast<double>(r * 32 + c);
      });
      rt.export_region("field", t, field);
    }
    rt.finalize();
  });

  // 4. The consumer: 3 processes with a *different* block layout — the
  //    framework redistributes the data between the two decompositions.
  const BlockDecomposition consumer_layout = BlockDecomposition::make_grid(32, 32, 3);
  system.set_program_body("consumer", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("field", consumer_layout);
    rt.commit();
    DistArray2D<double> field(consumer_layout, rt.rank());
    for (int step = 1; step <= 5; ++step) {
      const double want = step;  // ask for t = 1, 2, ... (exports end at 5.0)
      const auto status = rt.import_region("field", want, field);
      ctx.compute(5e-4);
      if (rt.rank() == 0) {
        if (status.ok()) {
          std::printf("consumer: wanted t=%.1f, matched version t=%.2f, field[0,0]=%.4f\n",
                      want, status.matched, field.at(0, 0));
        } else {
          std::printf("consumer: wanted t=%.1f -> NO MATCH\n", want);
        }
      }
    }
    rt.finalize();
  });

  // 5. Run everything (programs + their representative processes).
  system.run();

  const auto& stats = system.proc_stats("producer", 0).exports.at(0);
  std::printf(
      "\nproducer rank 0: %llu exports, %llu buffered (memcpy), %llu skipped, "
      "%llu transferred\n",
      static_cast<unsigned long long>(stats.exports),
      static_cast<unsigned long long>(stats.buffer.stores),
      static_cast<unsigned long long>(stats.buffer.skips),
      static_cast<unsigned long long>(stats.transfers));
  std::printf("done in %.4f virtual seconds\n", system.end_time());
  return 0;
}
