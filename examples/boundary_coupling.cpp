// Shared-boundary coupling: two independently developed heat-solver
// domains sitting side by side exchange only their adjacent edge strips —
// the paper's "interfaces between components, which are the shared
// boundaries ... between physical models" (§1) — using windowed
// connections (a sub-box of the exporter's domain per connection).
//
//   left domain (2 procs)              right domain (3 procs)
//   [0,32)x[0,32)                      [0,32)x[0,32)
//        east strip [0,32)x[28,32)  ->  right's "west_in" 32x4 region
//        left's "east_in" 32x4     <-   west strip [0,32)x[0,4)
//
// Each solver folds the imported strip into its forcing near the shared
// edge, so heat generated on one side visibly leaks into the other.
//
// Usage: ./build/examples/boundary_coupling [--steps=16]
#include <cstdio>
#include <iostream>

#include "collectives/communicator.hpp"
#include "collectives/reduce_ops.hpp"
#include "core/report.hpp"
#include "core/system.hpp"
#include "sim/heat2d.hpp"
#include "util/cli.hpp"

using namespace ccf;
using core::CouplingRuntime;
using dist::BlockDecomposition;
using dist::Box;
using dist::DistArray2D;
using dist::Index;

namespace {

constexpr Index kN = 32;        // each domain is kN x kN
constexpr Index kStrip = 4;     // exchanged strip width
constexpr double kDt = 0.2;

/// One domain's body: solve, export the strip facing the peer, import the
/// peer's strip, and use it as extra forcing along the shared edge.
void run_domain(CouplingRuntime& rt, runtime::ProcessContext& ctx,
                const BlockDecomposition& layout, const BlockDecomposition& strip_layout,
                bool is_left, int steps, double source_heat,
                std::vector<double>* edge_heat_series) {
  rt.define_export_region("state", layout);
  rt.define_import_region(is_left ? "east_in" : "west_in", strip_layout);
  rt.commit();

  const std::string import_region = is_left ? "east_in" : "west_in";
  // Program processes have contiguous global ids (rank 0 first).
  std::vector<transport::ProcId> my_procs;
  for (int r = 0; r < layout.nprocs(); ++r) {
    my_procs.push_back(ctx.id() - rt.rank() + r);
  }
  sim::HeatSolver2D solver(layout, rt.rank(), my_procs, /*alpha=*/0.25, kDt);
  DistArray2D<double> state(layout, rt.rank());
  DistArray2D<double> forcing(layout, rt.rank());
  DistArray2D<double> peer_strip(strip_layout, rt.rank());
  collectives::Communicator comm(ctx, my_procs);

  for (int k = 1; k <= steps; ++k) {
    const double t = k * kDt;
    // Internal heat source: the left domain has one, the right does not.
    forcing.fill([&](Index r, Index c) {
      // Source band sits right against the shared (east) edge so its heat
      // reaches the exchanged strip within a few steps.
      const bool near_edge =
          r > kN / 4 && r < 3 * kN / 4 && c >= kN - kStrip - 4 && c < kN - kStrip;
      return is_left && near_edge ? source_heat : 0.0;
    });
    // Fold the peer's boundary strip (from the previous step) into the
    // forcing along the shared edge.
    if (k > 1) {
      const Box sb = peer_strip.local_box();
      const Box mine = forcing.local_box();
      for (Index r = sb.row_begin; r < sb.row_end; ++r) {
        for (Index c = sb.col_begin; c < sb.col_end; ++c) {
          // Strip column c maps to this domain's edge columns.
          const Index col = is_left ? kN - kStrip + c : c;
          if (mine.contains(r, col)) {
            forcing.at(r, col) += peer_strip.at(r, c);
          }
        }
      }
    }
    solver.step(ctx, forcing);
    ctx.compute(1e-4);

    // Export the full state; the connection's window clips it to the
    // strip facing the peer.
    state.fill([&](Index r, Index c) { return solver.u().at(r, c); });
    rt.export_region("state", t, state);
    if (k < steps) {
      // Import the peer's strip for the next step (REGL tol one step).
      const auto st = rt.import_region(import_region, t, peer_strip);
      CCF_CHECK(st.ok(), "strip import failed at t=" << t);
    }

    // Diagnostic: heat in this domain's shared-edge strip.
    double edge = 0;
    const Box mine = solver.u().local_box();
    for (Index r = mine.row_begin; r < mine.row_end; ++r) {
      for (Index c = mine.col_begin; c < mine.col_end; ++c) {
        const bool in_edge = is_left ? c >= kN - kStrip : c < kStrip;
        if (in_edge) edge += solver.u().at(r, c);
      }
    }
    edge = comm.all_reduce_one(edge, collectives::Sum{});
    if (rt.rank() == 0 && edge_heat_series) edge_heat_series->push_back(edge);
  }
  rt.finalize();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("boundary_coupling",
                      "Two heat-solver domains exchanging shared-boundary strips");
  cli.add_option("steps", "16", "solver steps per domain");
  if (!cli.parse(argc, argv)) return 0;
  const int steps = static_cast<int>(cli.get_int("steps"));

  core::Config config;
  config.add_program(core::ProgramSpec{"left", "h", "/left", 2, {}});
  config.add_program(core::ProgramSpec{"right", "h", "/right", 3, {}});
  // left's east edge strip -> right's west input.
  core::ConnectionSpec east{"left", "state", "right", "west_in", core::MatchPolicy::REGL, kDt};
  east.exporter_window = Box{0, kN, kN - kStrip, kN};
  config.add_connection(east);
  // right's west edge strip -> left's east input.
  core::ConnectionSpec west{"right", "state", "left", "east_in", core::MatchPolicy::REGL, kDt};
  west.exporter_window = Box{0, kN, 0, kStrip};
  config.add_connection(west);

  core::CoupledSystem system(config, runtime::ClusterOptions{}, core::FrameworkOptions{});
  const auto left_layout = BlockDecomposition::make_row_blocks(kN, kN, 2);
  const auto right_layout = BlockDecomposition::make_row_blocks(kN, kN, 3);
  const auto left_strip = BlockDecomposition::make_row_blocks(kN, kStrip, 2);
  const auto right_strip = BlockDecomposition::make_row_blocks(kN, kStrip, 3);

  std::vector<double> left_edge, right_edge;
  system.set_program_body("left", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    run_domain(rt, ctx, left_layout, left_strip, /*is_left=*/true, steps, /*source=*/5.0,
               &left_edge);
  });
  system.set_program_body("right", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    run_domain(rt, ctx, right_layout, right_strip, /*is_left=*/false, steps, 0.0, &right_edge);
  });
  system.run();

  std::printf("== shared-boundary coupling (two %lldx%lld heat domains, %lld-wide strips) ==\n",
              static_cast<long long>(kN), static_cast<long long>(kN),
              static_cast<long long>(kStrip));
  std::printf("heat at the shared edge per step (left has the only source):\n");
  std::printf("  step   left-edge    right-edge\n");
  for (std::size_t i = 0; i < left_edge.size(); ++i) {
    std::printf("  %4zu   %11.6f  %11.6f\n", i + 1, left_edge[i],
                i < right_edge.size() ? right_edge[i] : 0.0);
  }
  std::printf("\n(right-edge heat grows from zero: it leaks across the coupled boundary)\n\n");
  core::print_run_report(system, std::cout);
  return 0;
}
