// Reservoir simulation + detached analysis, in the style of the paper's
// second motivating application ("multi-scale multiresolution petroleum
// reservoir simulation", §1 [9], and CUMULVS-style visualization [5]):
//
//   reservoir (4 procs): pressure diffusion around injection/production
//       wells, exporting the pressure field every step;
//   analysis (2 procs): a monitoring component that samples the field at
//       sparse, irregular "interactive" times with a small tolerance —
//       some requests legitimately find NO MATCH and the monitor just
//       carries on (the loosely coupled contract: components never wait
//       on each other's schedules).
//
// Usage: ./build/examples/reservoir_analysis [--steps=120]
#include <cstdio>
#include <iostream>

#include "collectives/communicator.hpp"
#include "collectives/reduce_ops.hpp"
#include "core/report.hpp"
#include "core/system.hpp"
#include "sim/heat2d.hpp"
#include "util/cli.hpp"

using namespace ccf;
using core::CouplingRuntime;
using dist::BlockDecomposition;
using dist::DistArray2D;
using dist::Index;

int main(int argc, char** argv) {
  util::CliParser cli("reservoir_analysis",
                      "Reservoir pressure simulation with a detached sparse monitor");
  cli.add_option("steps", "120", "reservoir steps");
  if (!cli.parse(argc, argv)) return 0;
  const int steps = static_cast<int>(cli.get_int("steps"));

  constexpr Index kN = 40;
  constexpr double kDt = 0.5;

  core::Config config;
  config.add_program(core::ProgramSpec{"reservoir", "c0", "/bin/res", 4, {}});
  config.add_program(core::ProgramSpec{"analysis", "c1", "/bin/mon", 2, {}});
  // Tight tolerance: the monitor wants a field within 1.2 time units of
  // its sampling instant or nothing at all.
  config.add_connection(
      core::ConnectionSpec{"reservoir", "pressure", "analysis", "pressure",
                           core::MatchPolicy::REG, 1.2});

  core::CoupledSystem system(config, runtime::ClusterOptions{}, core::FrameworkOptions{});
  const auto res_layout = BlockDecomposition::make_grid(kN, kN, 4);
  const auto mon_layout = BlockDecomposition::make_grid(kN, kN, 2);

  system.set_program_body("reservoir", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("pressure", res_layout);
    rt.commit();
    std::vector<transport::ProcId> peers;
    for (int r = 0; r < 4; ++r) peers.push_back(ctx.id() - rt.rank() + r);
    sim::HeatSolver2D solver(res_layout, rt.rank(), peers, /*alpha=*/0.4, kDt);
    DistArray2D<double> wells(res_layout, rt.rank());
    // Injection well (positive source) and production well (sink).
    wells.fill([&](Index r, Index c) {
      if (r >= 8 && r < 12 && c >= 8 && c < 12) return 2.0;     // injector
      if (r >= 28 && r < 32 && c >= 28 && c < 32) return -1.5;  // producer
      return 0.0;
    });
    DistArray2D<double> field(res_layout, rt.rank());
    for (int k = 1; k <= steps; ++k) {
      solver.step(ctx, wells);
      ctx.compute(2e-5);
      field.fill([&](Index r, Index c) { return solver.u().at(r, c); });
      rt.export_region("pressure", k * kDt, field);
    }
    rt.finalize();
  });

  struct Sample {
    double wanted;
    bool matched;
    double version;
    double injector_p;
    double producer_p;
  };
  std::vector<Sample> samples;
  system.set_program_body("analysis", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("pressure", mon_layout);
    rt.commit();
    std::vector<transport::ProcId> peers;
    for (int r = 0; r < 2; ++r) peers.push_back(ctx.id() - rt.rank() + r);
    collectives::Communicator comm(ctx, peers);
    DistArray2D<double> field(mon_layout, rt.rank());
    // Irregular sampling instants, including some beyond the run's end
    // (NO MATCH) — an interactive user poking at the simulation.
    const double horizon = steps * kDt;
    for (double frac : {0.07, 0.18, 0.21, 0.44, 0.71, 0.97, 1.35, 1.62}) {
      const double want = frac * horizon;
      const auto st = rt.import_region("pressure", want, field);
      ctx.compute(1e-3);  // "rendering"
      double inj = 0, prod = 0;
      if (st.ok()) {
        const dist::Box box = field.local_box();
        for (Index r = box.row_begin; r < box.row_end; ++r) {
          for (Index c = box.col_begin; c < box.col_end; ++c) {
            if (r >= 8 && r < 12 && c >= 8 && c < 12) inj += field.at(r, c);
            if (r >= 28 && r < 32 && c >= 28 && c < 32) prod += field.at(r, c);
          }
        }
      }
      inj = comm.all_reduce_one(inj, collectives::Sum{});
      prod = comm.all_reduce_one(prod, collectives::Sum{});
      if (rt.rank() == 0) {
        samples.push_back(Sample{want, st.ok(), st.ok() ? st.matched : 0.0, inj / 16, prod / 16});
      }
    }
    rt.finalize();
  });

  system.run();

  std::printf("== reservoir + detached analysis ==\n");
  std::printf("reservoir: %lldx%lld pressure field, %d steps of dt=%.1f; monitor samples\n"
              "at irregular instants with REG tolerance 1.2 (sparse coupling)\n\n",
              static_cast<long long>(kN), static_cast<long long>(kN), steps, kDt);
  std::printf("  wanted t   result      version   mean p(injector)  mean p(producer)\n");
  for (const auto& s : samples) {
    if (s.matched) {
      std::printf("  %8.2f   matched    %8.2f   %15.4f   %15.4f\n", s.wanted, s.version,
                  s.injector_p, s.producer_p);
    } else {
      std::printf("  %8.2f   NO MATCH (simulation never produced a version this close)\n",
                  s.wanted);
    }
  }
  std::printf("\n");
  core::print_run_report(system, std::cout);
  return 0;
}
