// Multi-resolution coupling: one data-producing component feeds two
// consumers that run on different time scales and use different match
// policies — the scenario the paper's buffering analysis targets ("much
// unnecessary buffering can occur ... in coupling physical simulation
// components that act on different time scales", §4.1).
//
//   producer (4 procs) --- REGL tol 1.5 --> fast consumer (every 2 units)
//                      \-- REG  tol 2.0 --> slow consumer (every 10 units)
//
// Producer rank 3 carries 10x the compute load, making it the slowest
// process of the slower program — exactly the process buddy-help targets.
//
// Run with --no-buddy-help to see the baseline buffering behaviour.
#include <cstdio>

#include "core/system.hpp"
#include "util/cli.hpp"

using namespace ccf;
using core::CouplingRuntime;
using dist::BlockDecomposition;
using dist::DistArray2D;

int main(int argc, char** argv) {
  util::CliParser cli("multiscale_coupling",
                      "One producer feeding two consumers at different time scales");
  cli.add_option("exports", "200", "number of producer exports");
  cli.add_flag("no-buddy-help", "disable the buddy-help optimization");
  if (!cli.parse(argc, argv)) return 0;

  const int exports = static_cast<int>(cli.get_int("exports"));

  core::Config config;
  config.add_program(core::ProgramSpec{"producer", "localhost", "./p", 4, {}});
  config.add_program(core::ProgramSpec{"fast", "localhost", "./fast", 2, {}});
  config.add_program(core::ProgramSpec{"slow", "localhost", "./slow", 2, {}});
  config.add_connection(
      core::ConnectionSpec{"producer", "field", "fast", "in", core::MatchPolicy::REGL, 1.5});
  config.add_connection(
      core::ConnectionSpec{"producer", "field", "slow", "in", core::MatchPolicy::REG, 2.0});

  core::FrameworkOptions fw;
  fw.buddy_help = !cli.get_bool("no-buddy-help");
  core::CoupledSystem system(config, runtime::ClusterOptions{}, fw);

  const auto p_layout = BlockDecomposition::make_grid(32, 32, 4);
  const auto c_layout = BlockDecomposition::make_grid(32, 32, 2);

  system.set_program_body("producer", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("field", p_layout);
    rt.commit();
    DistArray2D<double> field(p_layout, rt.rank());
    // Rank 3 carries extra load — the slowest process, where buddy-help
    // matters (paper §4.1).
    const double work = rt.rank() == 3 ? 1e-3 : 1e-4;
    for (int k = 1; k <= exports; ++k) {
      const double t = k;
      ctx.compute(work);
      field.fill([&](dist::Index, dist::Index) { return t; });
      rt.export_region("field", t, field);
    }
    rt.finalize();
  });

  auto consumer = [&](double stride, double per_step_work) {
    return [&, stride, per_step_work](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
      rt.define_import_region("in", c_layout);
      rt.commit();
      DistArray2D<double> in(c_layout, rt.rank());
      ctx.compute(per_step_work);
      for (double x = stride; x <= exports; x += stride) {
        (void)rt.import_region("in", x, in);
        ctx.compute(per_step_work);
      }
      rt.finalize();
    };
  };
  system.set_program_body("fast", consumer(2.0, 4e-4));
  system.set_program_body("slow", consumer(10.0, 5e-3));

  system.run();

  std::printf("== multi-resolution coupling (buddy-help %s) ==\n",
              fw.buddy_help ? "ON" : "OFF");
  std::printf("producer: %d exports; fast consumer: every 2 units (REGL tol 1.5); "
              "slow consumer: every 10 units (REG tol 2.0)\n\n",
              exports);
  std::printf("%-10s %-9s %-9s %-9s %-10s %-11s %-8s\n", "proc", "exports", "memcpys",
              "skips", "transfers", "helps", "T_ub ms");
  for (int r = 0; r < 4; ++r) {
    const auto& s = system.proc_stats("producer", r).exports.at(0);
    std::printf("%-10s %-9llu %-9llu %-9llu %-10llu %-11llu %-8.3f\n",
                (r == 3 ? "p3 (slow)" : ("p" + std::to_string(r)).c_str()),
                static_cast<unsigned long long>(s.exports),
                static_cast<unsigned long long>(s.buffer.stores),
                static_cast<unsigned long long>(s.buffer.skips),
                static_cast<unsigned long long>(s.transfers),
                static_cast<unsigned long long>(s.buddy_helps_received), s.t_ub() * 1e3);
  }
  for (const char* prog : {"fast", "slow"}) {
    const auto& s = system.proc_stats(prog, 0).imports.at(0);
    std::printf("\n%s consumer: %llu imports, %llu matched, %llu no-match", prog,
                static_cast<unsigned long long>(s.imports),
                static_cast<unsigned long long>(s.matches),
                static_cast<unsigned long long>(s.no_matches));
  }
  std::printf("\nrep buddy-helps issued: %llu\n",
              static_cast<unsigned long long>(system.rep_result("producer").buddy_helps_sent));
  return 0;
}
