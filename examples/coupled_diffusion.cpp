// The paper's motivating application, end to end: a parallel solver for
//     u_tt = u_xx + u_yy + f(t, x, y)
// (program U) coupled to an external forcing-function component (program
// F) that runs on a finer time scale. U imports f once per coarse step;
// F exports every fine step; REGL approximate matching picks the freshest
// forcing version not newer than the solver's time.
//
// This exercises the full stack with real physics: ghost-halo exchange
// inside U, buffering/matching/buddy-help between the programs, and MxN
// redistribution between different process layouts.
//
// Usage: ./build/examples/coupled_diffusion [--grid=64] [--coarse-steps=20]
//        [--refine=10] [--solver-procs=4] [--forcing-procs=2] [--threads]
#include <cstdio>

#include "collectives/communicator.hpp"
#include "collectives/reduce_ops.hpp"
#include "core/system.hpp"
#include "sim/forcing.hpp"
#include "sim/wave2d.hpp"
#include "util/cli.hpp"

using namespace ccf;
using core::CouplingRuntime;
using dist::BlockDecomposition;
using dist::DistArray2D;

int main(int argc, char** argv) {
  util::CliParser cli("coupled_diffusion",
                      "Coupled 2-D wave/diffusion solver with an external forcing component");
  cli.add_option("grid", "64", "global grid size (grid x grid)");
  cli.add_option("coarse-steps", "20", "solver steps (one import per step)");
  cli.add_option("refine", "10", "forcing steps per solver step (time-scale ratio)");
  cli.add_option("solver-procs", "4", "processes in the solver program U");
  cli.add_option("forcing-procs", "2", "processes in the forcing program F");
  cli.add_flag("threads", "run on real threads instead of virtual time");
  if (!cli.parse(argc, argv)) return 0;

  const auto grid = static_cast<dist::Index>(cli.get_int("grid"));
  const int coarse_steps = static_cast<int>(cli.get_int("coarse-steps"));
  const int refine = static_cast<int>(cli.get_int("refine"));
  const int solver_procs = static_cast<int>(cli.get_int("solver-procs"));
  const int forcing_procs = static_cast<int>(cli.get_int("forcing-procs"));
  const double solver_dt = 0.1;
  const double forcing_dt = solver_dt / refine;

  core::Config config;
  config.add_program(core::ProgramSpec{"F", "localhost", "./forcing", forcing_procs, {}});
  config.add_program(core::ProgramSpec{"U", "localhost", "./solver", solver_procs, {}});
  // Tolerance of one solver step: accept the freshest forcing version in
  // (t - dt, t].
  config.add_connection(
      core::ConnectionSpec{"F", "f", "U", "f", core::MatchPolicy::REGL, solver_dt});

  runtime::ClusterOptions cluster_options;
  cluster_options.mode = cli.get_bool("threads") ? runtime::ExecutionMode::RealThreads
                                                 : runtime::ExecutionMode::VirtualTime;
  core::CoupledSystem system(config, cluster_options, core::FrameworkOptions{});

  const auto f_layout = BlockDecomposition::make_grid(grid, grid, forcing_procs);
  const auto u_layout = BlockDecomposition::make_grid(grid, grid, solver_procs);
  const int total_fine_steps = coarse_steps * refine;

  system.set_program_body("F", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("f", f_layout);
    rt.commit();
    sim::ForcingField forcing(f_layout, rt.rank());
    for (int k = 1; k <= total_fine_steps; ++k) {
      const double t = k * forcing_dt;
      forcing.fill(t);       // full analytic evaluation each fine step
      ctx.compute(1e-5);     // plus modeled computation time
      rt.export_region("f", t, forcing.field());
    }
    rt.finalize();
  });

  std::vector<double> energy_series;
  system.set_program_body("U", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("f", u_layout);
    rt.commit();
    std::vector<transport::ProcId> peers =
        system.layout().program("U").proc_ids();
    sim::WaveSolver2D solver(u_layout, rt.rank(), peers, solver_dt);
    DistArray2D<double> forcing(u_layout, rt.rank());
    collectives::Communicator comm(ctx, peers);
    for (int step = 1; step <= coarse_steps; ++step) {
      const double t = step * solver_dt;
      const auto status = rt.import_region("f", t, forcing);
      CCF_CHECK(status.ok(), "forcing import failed at t=" << t);
      solver.step(ctx, forcing);
      const double energy = comm.all_reduce_one(solver.local_energy(), collectives::Sum{});
      if (rt.rank() == 0) energy_series.push_back(energy);
    }
    rt.finalize();
  });

  system.run();

  std::printf("== coupled diffusion/wave run ==\n");
  std::printf("grid %lldx%lld, U: %d procs (dt=%.2f), F: %d procs (dt=%.3f, %dx finer)\n",
              static_cast<long long>(grid), static_cast<long long>(grid), solver_procs,
              solver_dt, forcing_procs, forcing_dt, refine);
  std::printf("solver energy trajectory (sum u^2):\n");
  for (std::size_t i = 0; i < energy_series.size(); ++i) {
    std::printf("  step %2zu  t=%4.1f  energy %.6e\n", i + 1, static_cast<double>(i + 1) * solver_dt,
                energy_series[i]);
  }

  const auto& f_stats = system.proc_stats("F", 0).exports.at(0);
  const auto& u_stats = system.proc_stats("U", 0).imports.at(0);
  std::printf("\nF rank 0: %llu exports, %llu buffered, %llu skipped, %llu transferred\n",
              static_cast<unsigned long long>(f_stats.exports),
              static_cast<unsigned long long>(f_stats.buffer.stores),
              static_cast<unsigned long long>(f_stats.buffer.skips),
              static_cast<unsigned long long>(f_stats.transfers));
  std::printf("U rank 0: %llu imports, %llu matched, %llu no-match\n",
              static_cast<unsigned long long>(u_stats.imports),
              static_cast<unsigned long long>(u_stats.matches),
              static_cast<unsigned long long>(u_stats.no_matches));
  std::printf("matched forcing timestamps:");
  for (double t : u_stats.matched_timestamps) std::printf(" %.2f", t);
  std::printf("\nend time: %.4f %s seconds\n", system.end_time(),
              cli.get_bool("threads") ? "wall" : "virtual");
  return 0;
}
