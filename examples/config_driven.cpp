// Config-file-driven coupling (paper §3.1, Figure 2).
//
// The deployment — which programs exist, how many processes each has, and
// which exported regions feed which imported regions under what match
// policy — lives entirely in a configuration file that is separate from
// the program code. Swapping a consumer for another one is a config edit;
// no program is recompiled.
//
// Usage: ./build/examples/config_driven [path/to/config]
// With no argument, a sample config is written to /tmp and used.
#include <cstdio>
#include <fstream>

#include "core/system.hpp"

using namespace ccf;
using core::CouplingRuntime;
using dist::BlockDecomposition;
using dist::DistArray2D;

namespace {

const char* kSampleConfig = R"(# sample coupling configuration (paper Figure 2 format)
# <program> <host> <executable> <nprocs> [args...]
ocean  cluster0 /opt/sim/bin/ocean 4
atmos  cluster1 /opt/sim/bin/atmos 3
#
# <exporter.region> <importer.region> <policy> <tolerance>
ocean.sst atmos.sst REGL 0.25
)";

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/ccf_sample_coupling.cfg";
    std::ofstream out(path);
    out << kSampleConfig;
  }

  core::Config config = core::Config::parse_file(path);
  std::printf("== parsed coupling configuration (%s) ==\n%s\n", path.c_str(),
              config.summary().c_str());

  // Bodies are looked up by the program names found in the config. This
  // example provides a generic "producer" for every program that only
  // exports and a generic "consumer" for every program that only imports.
  core::CoupledSystem system(config, runtime::ClusterOptions{}, core::FrameworkOptions{});

  for (const auto& prog : config.programs()) {
    const bool is_exporter = !config.connections_of_exporter_program(prog.name).empty();
    const auto layout = BlockDecomposition::make_grid(48, 48, prog.nprocs);

    if (is_exporter) {
      // Region names come from the config, so the same body serves any
      // exporting program.
      std::vector<std::string> regions;
      for (int conn : config.connections_of_exporter_program(prog.name)) {
        const auto& region = config.connections()[static_cast<std::size_t>(conn)].exporter_region;
        if (std::find(regions.begin(), regions.end(), region) == regions.end()) {
          regions.push_back(region);
        }
      }
      system.set_program_body(prog.name, [&, layout, regions](CouplingRuntime& rt,
                                                              runtime::ProcessContext& ctx) {
        for (const auto& region : regions) rt.define_export_region(region, layout);
        rt.commit();
        DistArray2D<double> field(layout, rt.rank());
        for (int k = 1; k <= 40; ++k) {
          ctx.compute(1e-4);
          field.fill([&](dist::Index r, dist::Index c) {
            return k + 0.0001 * static_cast<double>(r + c);
          });
          for (const auto& region : regions) rt.export_region(region, k * 0.25, field);
        }
        rt.finalize();
      });
    } else {
      std::vector<std::string> regions;
      for (int conn : config.connections_of_importer_program(prog.name)) {
        regions.push_back(config.connections()[static_cast<std::size_t>(conn)].importer_region);
      }
      system.set_program_body(prog.name, [&, prog, layout, regions](CouplingRuntime& rt,
                                                                    runtime::ProcessContext& ctx) {
        for (const auto& region : regions) rt.define_import_region(region, layout);
        rt.commit();
        DistArray2D<double> field(layout, rt.rank());
        for (int k = 1; k <= 10; ++k) {
          for (const auto& region : regions) {
            const auto status = rt.import_region(region, k * 1.0, field);
            if (rt.rank() == 0) {
              std::printf("%s: import %s @ t=%.1f -> %s", prog.name.c_str(), region.c_str(),
                          k * 1.0, status.ok() ? "matched " : "NO MATCH");
              if (status.ok()) std::printf("%.2f", status.matched);
              std::printf("\n");
            }
          }
          ctx.compute(5e-4);
        }
        rt.finalize();
      });
    }
  }

  system.run();
  std::printf("\nrun complete in %.4f virtual seconds\n", system.end_time());

  // Demonstrate the early error detection the separate configuration
  // enables: an importer whose region no one exports is rejected during
  // validation, before any simulation runs.
  std::printf("\n== early misconfiguration detection demo ==\n");
  try {
    core::Config bad;
    bad.add_program(core::ProgramSpec{"a", "h", "/a", 1, {}});
    bad.add_program(core::ProgramSpec{"b", "h", "/b", 1, {}});
    bad.add_connection(core::ConnectionSpec{"a", "x", "b", "y", core::MatchPolicy::REGL, 1.0});
    bad.add_connection(core::ConnectionSpec{"a", "z", "b", "y", core::MatchPolicy::REGL, 1.0});
    bad.validate();
    std::printf("unexpected: bad config accepted\n");
  } catch (const util::InvalidArgument& e) {
    std::printf("rejected as expected: %s\n", e.what());
  }
  return 0;
}
